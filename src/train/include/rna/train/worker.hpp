#pragma once

// Per-worker training state shared by every protocol implementation: the
// model replica, the zero-copy data shard view and its streaming batch
// generator, the optimizer, and the straggler-injection machinery
// (per-iteration sleeps drawn from a sim::IterationTimeModel, the same
// technique the paper uses to emulate heterogeneity on its physical
// cluster).

#include <memory>
#include <span>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/common/rng.hpp"
#include "rna/data/batch_generator.hpp"
#include "rna/data/dataset.hpp"
#include "rna/data/shard_view.hpp"
#include "rna/nn/optimizer.hpp"
#include "rna/obs/trace.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"

namespace rna::train {

class WorkerContext {
 public:
  WorkerContext(std::size_t rank, const TrainerConfig& config,
                const ModelFactory& factory, const data::Dataset& train_data);

  std::size_t Rank() const { return rank_; }
  std::size_t Dim() const { return dim_; }
  nn::Network& Net() { return *net_; }
  nn::SgdMomentum& Optimizer() { return optimizer_; }
  WorkerTimeBreakdown& Times() { return times_; }
  /// The worker's batch stream (tests assert steady-state steps consume
  /// prefetched batches and that shard storage is shared, not copied).
  const data::BatchGenerator& Generator() const { return generator_; }
  const data::ShardView& Shard() const { return shard_; }

  /// Runs one mini-batch at `params`: sets the replica's parameters,
  /// computes loss/gradient, sleeps the injected per-iteration delay, and
  /// writes the flat gradient into `grad_out`. Updates the compute-time
  /// account and the per-worker iteration counter. When a trace recorder
  /// is active, each batch is one kCompute span on "worker<rank>/compute"
  /// (args: iteration index, injected delay) — the same measurement that
  /// feeds the compute account, so breakdown and trace always agree.
  nn::BatchResult ComputeGradient(std::span<const float> params,
                                  std::span<float> grad_out);

  /// Mini-batches computed so far.
  std::size_t Iterations() const { return times_.iterations; }

  /// Measures the mean iteration time over `iters` batches without
  /// touching persistent state beyond the rng (used by the hierarchical
  /// grouping calibration, §4).
  common::Seconds MeasureIterationTime(std::span<const float> params,
                                       std::size_t iters);

 private:
  common::Seconds SampleDelay();

  /// Runs one worst-case batch through the replica and pins the compute
  /// arena's short region at the observed high-water (Arena::ReserveExact).
  /// Called once, lazily, before the first real batch; no-op when the
  /// model does not use an arena.
  void PinArenaCapacity(std::span<const float> params);

  std::size_t rank_;
  std::unique_ptr<nn::Network> net_;
  std::size_t dim_;
  // Zero-copy view into the run's shared dataset (no per-worker replica)
  // and the streaming generator that pre-assembles its batches.
  data::ShardView shard_;
  data::BatchGenerator generator_;
  nn::SgdMomentum optimizer_;
  const sim::IterationTimeModel* delay_model_;
  double delay_scale_;
  double sleep_per_step_;
  double sleep_per_step_sq_;
  common::Rng delay_rng_;
  WorkerTimeBreakdown times_;
  // Lazily registered on the first traced batch (the compute thread owns
  // the track); calibration batches suppress spans so figures only see
  // training compute.
  obs::TrackHandle track_;
  bool track_registered_ = false;
  bool record_spans_ = true;
  bool arena_pinned_ = false;
};

/// Builds one context per rank; all replicas share config.model_seed so
/// they start from identical parameters.
std::vector<std::unique_ptr<WorkerContext>> MakeWorkers(
    const TrainerConfig& config, const ModelFactory& factory,
    const data::Dataset& train_data);

/// Initial flat parameter vector of a fresh replica.
std::vector<float> InitialParams(const TrainerConfig& config,
                                 const ModelFactory& factory);

}  // namespace rna::train
