#pragma once

// Per-run fault machinery shared by every protocol runner:
//  * BuildFaultPlan lowers TrainerConfig::fault's network probabilities into
//    a net::FaultPlan for the run's fabric;
//  * FaultRuntime tracks which ranks are alive and fires the per-rank
//    worker schedules (crash / hang / flaky) at deterministic, schedule-
//    indexed points — the flaky coin flips come from a SplitMix64 hash of
//    (fault seed, rank, iteration), not a shared RNG, so they replay
//    identically regardless of thread interleaving;
//  * RoundRobinGate serializes per-worker iterations into a fixed global
//    order for TrainerConfig::lockstep runs of the gossip/PS protocols
//    (AD-PSGD, async-PS), which have no controller to pace them.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"
#include "rna/train/config.hpp"

namespace rna::net {
class FaultPlan;
}

namespace rna::train {

/// The effective fault seed for a run (fault.seed, or derived from the
/// training seed when 0 so one seed replays the whole chaos scenario).
std::uint64_t EffectiveFaultSeed(const TrainerConfig& config);

/// Lowers the config's network fault probabilities into a fault plan for
/// the run's fabric. Returns nullptr when no network fault can fire (the
/// zero-fault path then skips plan installation entirely).
std::shared_ptr<net::FaultPlan> BuildFaultPlan(const TrainerConfig& config);

/// What FaultRuntime::BeforeIteration tells the worker loop to do.
enum class IterationFate {
  kRun,    ///< proceed normally (any hang/flaky sleep already served)
  kCrash,  ///< fail-stop now: announce kGoodbye and exit the worker loop
};

class FaultRuntime {
 public:
  explicit FaultRuntime(const TrainerConfig& config);

  /// Compute-path hook, called before computing local iteration `iter`
  /// (0-based). Serves hang/flaky sleeps inline; returns kCrash when the
  /// schedule says this rank dies here (the caller must not compute).
  IterationFate BeforeIteration(std::size_t rank, std::size_t iter);

  /// Comm-path hook: true when `rank` is scheduled to die on receiving the
  /// Go for `round` (mid-collective fail-stop).
  bool ShouldCrashInRound(std::size_t rank, std::size_t round) const;

  /// Marks a rank dead (fail-stop is permanent). Idempotent.
  void Kill(std::size_t rank);
  bool Alive(std::size_t rank) const {
    return alive_[rank].load(std::memory_order_acquire);
  }
  std::size_t LiveCount() const;

 private:
  const WorkerFaultSchedule* ScheduleFor(std::size_t rank) const {
    return schedules_[rank];
  }

  std::uint64_t fault_seed_;
  std::vector<const WorkerFaultSchedule*> schedules_;  ///< by rank, may be null
  std::vector<WorkerFaultSchedule> storage_;
  std::vector<std::atomic<bool>> alive_;
};

/// Serializes worker iterations into the fixed global order
/// (iteration 0: ranks 0..N−1, iteration 1: ranks 0..N−1, …), skipping
/// retired (crashed or finished) ranks, so protocols without a controller
/// have a deterministic schedule under lockstep. Shutdown() releases every
/// waiter with `false`.
class RoundRobinGate {
 public:
  explicit RoundRobinGate(std::size_t world);

  /// Blocks until it is `rank`'s turn; false when the gate was shut down
  /// (the caller should stop iterating). Must be paired with ReleaseTurn.
  bool AcquireTurn(std::size_t rank);

  /// Timed variant: additionally returns false when the turn did not come
  /// within `timeout` seconds (the caller should skip its slot, not stop).
  /// Only a true return must be paired with ReleaseTurn.
  bool AcquireTurnFor(std::size_t rank, common::Seconds timeout);

  void ReleaseTurn(std::size_t rank);

  /// Permanently removes a rank from the rotation (crash or loop exit).
  void Retire(std::size_t rank);

  void Shutdown();

 private:
  void AdvanceLocked() RNA_REQUIRES(mu_);

  common::Mutex mu_;
  common::CondVar cv_;
  std::vector<bool> retired_ RNA_GUARDED_BY(mu_);
  std::size_t cursor_ RNA_GUARDED_BY(mu_) = 0;
  std::size_t live_ RNA_GUARDED_BY(mu_);
  bool down_ RNA_GUARDED_BY(mu_) = false;
};

}  // namespace rna::train
