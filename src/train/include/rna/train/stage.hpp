#pragma once

// Cross-iteration gradient staging — the in-memory analogue of the paper's
// WriteOp/ReadOp TensorFlow kernels (§6). The compute thread writes freshly
// computed gradients tagged with their iteration; the communication thread
// drains the buffer when a collective triggers, combining multiple buffered
// gradients with the staleness-weighted average of §3.3. When the buffer
// holds `staleness_bound` gradients the oldest is overwritten (bounded
// staleness). The ParamBoard is the reverse path: the communication thread
// publishes freshly reduced parameters, the compute thread picks up the
// newest version before each batch (ReadOp), falling back to what it has if
// nothing new arrived — this is what lets computation run ahead without
// blocking on communication.

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"
#include "rna/train/config.hpp"

namespace rna::train {

class GradientStage {
 public:
  GradientStage(std::size_t dim, std::size_t staleness_bound,
                LocalCombine combine);

  /// Compute-thread side: buffer a gradient produced at `iteration`.
  /// Returns true when the buffer *grew*; false when the gradient replaced
  /// the stalest buffered entry (bounded staleness). Controllers count only
  /// growing writes so their readiness view tracks the true backlog.
  bool Write(std::span<const float> grad, std::int64_t iteration);

  struct Drained {
    std::vector<float> grad;      ///< locally combined gradient
    /// Entries *removed* from the buffer (controllers reconcile their
    /// readiness counts against this, so it must equal the number of
    /// Write()s consumed — kLatest discards all but the newest, but still
    /// reports every removed entry here and counts the rest as dropped).
    std::size_t count = 0;
    std::int64_t newest = -1;     ///< newest source iteration
    std::int64_t oldest = -1;     ///< oldest source iteration
  };

  /// Comm-thread side: removes and combines everything buffered.
  /// std::nullopt when the buffer is empty (→ contribute a null gradient).
  std::optional<Drained> Drain();

  bool HasGradient() const;
  std::size_t BufferedCount() const;
  std::size_t Dropped() const;

 private:
  struct Entry {
    std::vector<float> grad;
    std::int64_t iteration;
  };

  std::size_t dim_;
  std::size_t bound_;
  LocalCombine combine_;
  mutable common::Mutex mu_;
  std::deque<Entry> entries_ RNA_GUARDED_BY(mu_);
  std::size_t dropped_ RNA_GUARDED_BY(mu_) = 0;
};

/// Versioned parameter snapshot exchanged between threads.
class ParamBoard {
 public:
  explicit ParamBoard(std::vector<float> initial);

  /// Publishes a new version (monotonic by construction).
  void Publish(std::span<const float> params, std::int64_t version);

  /// Copies the parameters into `out` if the board holds a version newer
  /// than `last_seen`. Returns the board's current version either way.
  std::int64_t ReadIfNewer(std::int64_t last_seen,
                           std::vector<float>* out) const;

  /// Unconditional copy.
  std::vector<float> Snapshot(std::int64_t* version = nullptr) const;

 private:
  mutable common::Mutex mu_;
  std::vector<float> params_ RNA_GUARDED_BY(mu_);
  std::int64_t version_ RNA_GUARDED_BY(mu_) = 0;
};

}  // namespace rna::train
