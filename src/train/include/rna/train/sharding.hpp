#pragma once

// Controller-state sharding and the recursive parameter-server tree.
//
// ReadinessBoard replaces the controller's flat per-rank readiness vector:
// per-rank buffered-gradient counts are aggregated into fixed-size shards,
// and a global ready-rank tally is maintained incrementally on every
// update. Trigger policies that used to scan O(world) per decision
// (majority / solo / full) now read the O(1) aggregate, so the per-round
// controller cost stays O(1) per worker at 1000-rank worlds.
//
// BuildPsTree bounds the fan-in of the hierarchical parameter-server
// layer: with G groups and fan-in f, leaders of at most f groups share a
// leaf PS node, at most f nodes share a parent, and every non-root node
// periodically folds its state into its parent (kAverage), so no single
// endpoint ever serves more than f direct children.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rna::train {

/// Sharded readiness aggregate for a controller. Counts may go negative
/// transiently (a round report can decrement gradients whose kReady
/// notifications are still in flight); a rank is "ready" iff its count is
/// strictly positive.
class ReadinessBoard {
 public:
  static constexpr std::size_t kDefaultShardSize = 64;

  explicit ReadinessBoard(std::size_t world,
                          std::size_t shard_size = kDefaultShardSize);

  std::size_t Size() const { return counts_.size(); }
  std::size_t ShardCount() const { return shard_ready_.size(); }
  std::size_t ShardSize() const { return shard_size_; }

  /// Buffered-gradient count of `rank` as known from notifications.
  std::int64_t Count(std::size_t rank) const { return counts_[rank]; }

  /// Number of ranks with Count > 0 — O(1).
  std::size_t ReadyRanks() const { return ready_ranks_; }

  /// Ready ranks inside shard `s` — O(1); Σ over shards == ReadyRanks().
  std::size_t ReadyRanksInShard(std::size_t s) const {
    return shard_ready_[s];
  }

  /// Folds a notification (+1) or a round report (-consumed) in, updating
  /// the shard and global aggregates incrementally.
  void Add(std::size_t rank, std::int64_t delta);

  /// Zeroes a departed rank's count (death or leave) so it can never
  /// satisfy a trigger again.
  void Clear(std::size_t rank);

 private:
  std::size_t shard_size_;
  std::vector<std::int64_t> counts_;
  std::vector<std::size_t> shard_ready_;
  std::size_t ready_ranks_ = 0;
};

/// One node of the recursive PS tree. Node 0 is the root; every other node
/// has a parent it periodically folds its state into.
struct PsTreeNode {
  std::size_t parent = 0;               ///< parent node index (self for root)
  std::size_t depth = 0;                ///< 0 at the root
  std::vector<std::size_t> child_nodes; ///< direct child node indices
  std::vector<std::size_t> leaf_groups; ///< groups served here (leaves only)
};

struct PsTree {
  std::vector<PsTreeNode> nodes;       ///< nodes[0] is the root
  std::vector<std::size_t> leaf_of;    ///< group id -> serving leaf node
};

/// Builds the PS node tree for `num_groups` group leaders with per-node
/// fan-in at most `fan_in`. fan_in < 2 (or few groups) degenerates to the
/// classic single-node layout where every leader talks to the root.
PsTree BuildPsTree(std::size_t num_groups, std::size_t fan_in);

/// Contiguous parameter-range shard boundaries: shard `s` of `shards` owns
/// [ShardBegin, ShardEnd) of a `dim`-float model; the first dim % shards
/// shards are one element larger.
std::size_t ShardBegin(std::size_t dim, std::size_t shards, std::size_t s);
std::size_t ShardEnd(std::size_t dim, std::size_t shards, std::size_t s);

}  // namespace rna::train
