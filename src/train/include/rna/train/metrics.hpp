#pragma once

// Result types reported by every protocol runner; the benchmark harness
// turns these into the paper's tables and figures.

#include <cstdint>
#include <vector>

#include "rna/common/clock.hpp"

namespace rna::train {

struct CurvePoint {
  common::Seconds time = 0.0;  ///< wall time since training start
  std::size_t round = 0;       ///< synchronization rounds completed
  double loss = 0.0;           ///< validation loss
  double accuracy = 0.0;       ///< validation accuracy
};

struct WorkerTimeBreakdown {
  common::Seconds compute = 0.0;  ///< forward/backward (incl. injected delay)
  common::Seconds wait = 0.0;     ///< blocked on barrier / peers / controller
  common::Seconds comm = 0.0;     ///< inside collective / exchange / PS calls
  std::size_t iterations = 0;     ///< mini-batches computed by this worker
};

struct TrainResult {
  common::Seconds wall_seconds = 0.0;
  std::size_t rounds = 0;              ///< synchronization rounds executed
  std::size_t gradients_applied = 0;   ///< worker-gradients folded in
  std::size_t gradients_dropped = 0;   ///< overwritten by the staleness bound
  bool reached_target = false;
  bool early_stopped = false;

  double final_loss = 0.0;       ///< full validation loss at the end
  double final_accuracy = 0.0;   ///< full validation accuracy at the end
  double final_train_loss = 0.0; ///< training-set loss at the end

  /// The trained model (flat parameters), for checkpointing / deployment.
  std::vector<float> final_params;

  std::vector<CurvePoint> curve;
  std::vector<WorkerTimeBreakdown> breakdown;

  /// Per synchronization round: how many workers contributed a real
  /// gradient (partial-collective protocols; empty for AD-PSGD).
  std::vector<std::size_t> round_contributors;

  /// Workers still alive at the end of the run. Equals the world size
  /// unless fault injection crashed (or death-detection excluded) workers.
  std::size_t live_workers = 0;

  /// Elastic membership: ranks that completed a mid-training join (state
  /// sync acknowledged) and ranks that departed cleanly.
  std::size_t workers_joined = 0;
  std::size_t workers_left = 0;

  /// Thread-CPU seconds the controller(s) spent doing per-round work
  /// (token dispatch, Go construction, message handling, verdicts) —
  /// waits excluded, and descheduled time excluded too, so the figure
  /// means "work done" even when worker threads oversubscribe the cores.
  /// bench_scale divides this by world × rounds to gate the per-worker
  /// controller cost as worlds grow.
  common::Seconds controller_busy_seconds = 0.0;

  /// Messages the controller(s) sent or handled across the run (step
  /// tokens, Go dispatches, acks, round reports, goodbyes). Deterministic
  /// under lockstep, so bench_scale gates per-worker flatness on this
  /// count — an O(world) dispatch regression (a controller messaging
  /// beyond its group) shows up as growth per worker-round no matter how
  /// noisy the machine's clock is.
  std::size_t controller_messages = 0;

  /// Mean number of contributors per round.
  double MeanContributors() const {
    if (round_contributors.empty()) return 0.0;
    std::size_t sum = 0;
    for (auto c : round_contributors) sum += c;
    return static_cast<double>(sum) /
           static_cast<double>(round_contributors.size());
  }

  /// Mean wall time per synchronization round.
  common::Seconds MeanRoundTime() const {
    return rounds ? wall_seconds / static_cast<double>(rounds) : 0.0;
  }
};

}  // namespace rna::train
