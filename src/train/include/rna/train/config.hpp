#pragma once

// Configuration shared by every synchronization protocol's training run.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "rna/collectives/compression.hpp"
#include "rna/collectives/schedule.hpp"
#include "rna/data/dataset.hpp"
#include "rna/nn/network.hpp"
#include "rna/nn/optimizer.hpp"
#include "rna/sim/workload.hpp"

namespace rna::train {

/// Which synchronization protocol drives the run.
enum class Protocol {
  kHorovod,          ///< BSP ring allreduce with coordinator negotiation
  kEagerSgd,         ///< majority-triggered partial collective
  kAdPsgd,           ///< asynchronous randomized pairwise averaging
  kRna,              ///< the paper's contribution (flat)
  kRnaHierarchical,  ///< RNA within speed groups + PS across groups (§4)
  kSgp,              ///< stochastic gradient push (PushSum gossip, §9)
  kCentralizedPs,    ///< classic asynchronous parameter server (§2.2)
};

const char* ProtocolName(Protocol p);

/// Inverse of ProtocolName: canonical names plus the historical CLI
/// aliases ("eager" for eager-sgd, "adpsgd" for ad-psgd). std::nullopt for
/// anything else — CLIs decide how to report the error.
std::optional<Protocol> ParseProtocol(std::string_view name);

/// How locally buffered cross-iteration gradients are combined before the
/// collective (§3.3 uses the staleness-weighted average; §6's text mentions
/// plain summation — both are provided, plus latest-only, for ablation).
enum class LocalCombine {
  kWeightedAverage,  ///< g' = Σ(t−(k−τ)+1)·g_t / Σ(t−(k−τ)+1)
  kMean,             ///< unweighted mean of the buffered gradients
  kLatest,           ///< newest gradient only
};

/// What a worker whose gradient is not ready contributes to a triggered
/// partial collective.
enum class ContributionMode {
  /// RNA (§3.3): contribute a null gradient; the reduced sum is re-weighted
  /// by W = 1/Σw and the learning rate follows LrScalePolicy.
  kNullAndReweight,
  /// eager-SGD: re-contribute the previously sent gradient (stale), keep
  /// full averaging over N with no re-weighting — the staleness that costs
  /// eager-SGD accuracy in the paper's comparison.
  kStaleReuse,
};

/// Learning-rate adjustment when only m of N workers contribute
/// (Linear Scaling Rule, §3.3).
enum class LrScalePolicy {
  kLinear,    ///< γ_k = γ · m/N — effective batch shrinks, so does the step
  kConstant,  ///< γ_k = γ regardless of participation (ablation)
};

/// Builds one replica of the model. Every worker calls it with the *same*
/// seed so replicas start from identical parameters.
using ModelFactory =
    std::function<std::unique_ptr<nn::Network>(std::uint64_t seed)>;

/// Scripted faults for one worker rank. Iteration-indexed faults fire in the
/// worker's compute path (before computing the given 0-based local
/// iteration); round-indexed faults fire in its comm thread (on receiving
/// the Go for that round — i.e. mid-collective, the nastiest spot).
/// `kNever` (the default) disables a fault.
struct WorkerFaultSchedule {
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

  std::size_t rank = 0;

  /// Fail-stop crash before computing this local iteration.
  std::size_t crash_at_iteration = kNever;
  /// Fail-stop crash on receiving the Go for this round — the worker is a
  /// member of the round's collective and dies without participating, so
  /// surviving members must time out and abort instead of deadlocking.
  std::size_t crash_in_round = kNever;

  /// One-shot hang: before computing this local iteration, sleep
  /// hang_for_s. A hang longer than the controller's patience gets the
  /// worker declared absent (paper's null-gradient rule), not crashed.
  std::size_t hang_at_iteration = kNever;
  double hang_for_s = 0.0;

  /// Flaky window: for local iterations in [flaky_from, flaky_until), each
  /// iteration is preceded by an extra flaky_delay_s sleep with probability
  /// flaky_prob (drawn from the worker's deterministic fault stream).
  std::size_t flaky_from_iteration = 0;
  std::size_t flaky_until_iteration = 0;
  double flaky_delay_s = 0.0;
  double flaky_prob = 0.0;

  bool HasCrash() const {
    return crash_at_iteration != kNever || crash_in_round != kNever;
  }
};

/// Elastic-membership schedule for one rank: the worker sits out (pending)
/// until `join_at_round`, syncs state from the round leader, participates,
/// and departs cleanly at `leave_at_round` (a leave is not a death — no
/// strike-out, no fault accounting). `kNever` keeps the worker until the
/// end; join_at_round == 0 makes it a founding member.
struct ElasticSchedule {
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

  std::size_t rank = 0;
  std::size_t join_at_round = 0;
  std::size_t leave_at_round = kNever;
};

/// Fault-injection settings for a training run: network-level message
/// faults (lowered into a net::FaultPlan installed on the run's fabric),
/// per-rank worker schedules, and the recovery knobs the protocol layer
/// uses to survive them. Everything defaults to off / benign.
struct FaultConfig {
  // Probabilistic network faults applied to every message.
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  double delay_s = 0.0;  ///< extra in-flight delay when the delay fault fires

  /// Extra drop probability for parameter-server traffic only (overrides
  /// drop_prob on the PS request/reply tags) — the "drop 10% of PS
  /// traffic" chaos scenario.
  double ps_drop_prob = 0.0;

  /// Seed for the fault plan and the per-worker fault streams; 0 derives
  /// one from TrainerConfig::seed so chaos runs replay from a single seed.
  std::uint64_t seed = 0;

  std::vector<WorkerFaultSchedule> workers;

  // Recovery knobs.
  std::size_t retry_budget = 3;      ///< PS client attempts per logical call
  double retry_timeout_s = 0.05;     ///< first PS retry wait (doubles after)
  double collective_timeout_s = 0.5; ///< per-hop ring/broadcast recv deadline
  double probe_timeout_s = 0.25;     ///< controller wait before re-election
  /// Consecutive missed round reports before the controller declares a
  /// rank dead (fail-stop) and removes it from membership for good.
  std::size_t dead_after_misses = 3;

  /// True when any fault can actually fire (used to skip plan installation
  /// and keep the zero-fault fast path byte-identical to the old code).
  bool Enabled() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 ||
           ps_drop_prob > 0.0 || !workers.empty();
  }
  bool AnyCrash() const {
    for (const auto& w : workers) {
      if (w.HasCrash()) return true;
    }
    return false;
  }
};

struct TrainerConfig {
  Protocol protocol = Protocol::kRna;
  std::size_t world = 4;
  std::size_t batch_size = 16;
  /// Sequence workloads use kLengthBucketed to reproduce the paper's
  /// inherent load imbalance (per-batch compute ∝ sequence length).
  data::SamplingMode sampling = data::SamplingMode::kUniform;
  /// Batch-prefetch depth per worker (data::BatchGenerator): each worker's
  /// batches are pre-assembled on a background thread up to this many
  /// batches ahead, so steady-state compute spans contain no batch
  /// assembly. 0 assembles synchronously inside the step (the comparison
  /// baseline / minimum-thread mode). The emitted batch stream is
  /// identical for every depth, so this knob never perturbs determinism.
  std::size_t prefetch_batches = 2;
  nn::SgdConfig sgd;

  /// Step learning-rate schedule (§7.2: "decays to 0.1× on epochs
  /// 30/60/80"): at each listed synchronization round the learning rate is
  /// multiplied by lr_decay_factor, identically on every worker.
  std::vector<std::size_t> lr_decay_rounds;
  double lr_decay_factor = 0.1;

  // Stopping: whichever fires first.
  std::size_t max_rounds = 500;     ///< synchronization rounds
  double target_loss = -1.0;        ///< stop when eval loss <= target (if >0)
  std::size_t patience = 10;        ///< evals without improvement before stop
  double eval_period_s = 0.05;      ///< wall-clock cadence of the monitor
  std::size_t eval_samples = 256;   ///< validation subsample per eval

  // Straggler injection: per-iteration extra sleep sampled from the model,
  // multiplied by delay_scale (scale < 1 compresses the paper's
  // millisecond delays so experiments finish quickly).
  std::shared_ptr<const sim::IterationTimeModel> delay_model;
  double delay_scale = 1.0;

  // GPU-compute emulation for sequence workloads: after the (cheap, real)
  // gradient computation the worker additionally sleeps
  //   Σ_sequences (sleep_per_step·L + sleep_per_step_sq·L²)
  // so per-batch "compute" time is genuinely proportional to the input
  // lengths in the batch (linear for RNNs, quadratic for attention) at
  // GPU-realistic magnitudes. Sleeps overlap across workers regardless of
  // host core count, unlike raw CPU compute.
  double sleep_per_step = 0.0;
  double sleep_per_step_sq = 0.0;

  // Collective policy: the reduction schedule and wire compression every
  // allreduce in the run uses (collectives::CollectiveOptions; see
  // rna/collectives/schedule.hpp and compression.hpp). kStragglar consumes
  // the controller's per-round straggler verdicts to re-order the ring;
  // topk_fraction is the per-chunk keep fraction under kTopK.
  collectives::Schedule schedule = collectives::Schedule::kRing;
  collectives::Compression compression = collectives::Compression::kNone;
  double topk_fraction = 0.05;

  // Partial-collective knobs.
  std::size_t probe_choices = 2;
  std::size_t staleness_bound = 4;
  LocalCombine combine = LocalCombine::kWeightedAverage;
  LrScalePolicy lr_policy = LrScalePolicy::kLinear;
  ContributionMode contribution = ContributionMode::kNullAndReweight;

  // Hierarchical synchronization: group calibration rounds (per-worker mean
  // iteration time is measured over this many batches before grouping) and
  // the cadence of the asynchronous PS averaging across groups (§6 leaves
  // frequency tuning open; every round is the default).
  std::size_t calibration_iters = 8;
  std::size_t ps_sync_every = 1;

  // Scale-out knobs.
  /// Parameter-range sharding of the PS: each shard owns a contiguous
  /// 1/ps_shards slice of the model and its own fabric endpoint, and
  /// clients stripe push/pull across all shards (rna-h and async-ps).
  /// 1 keeps the classic single-server layout and wire format.
  std::size_t ps_shards = 1;
  /// Recursive PS fan-in for rna-h: 0 (default) keeps the flat two-level
  /// layout (every group leader talks to the root PS). A value f >= 2
  /// builds a tree of PS nodes where at most f groups share a leaf node
  /// and at most f nodes share a parent, so no endpoint ever serves more
  /// than f direct children.
  std::size_t ps_fan_in = 0;
  /// How often (in served requests) a non-root PS node folds its state
  /// into its parent (kAverage push/pull). Only meaningful with
  /// ps_fan_in >= 2.
  std::size_t ps_parent_sync_every = 1;
  /// Cap on hierarchical group size: a speed group larger than this is
  /// split (preserving speed ordering) so intra-group ring latency stays
  /// bounded at large worlds. 0 = uncapped (classic ζ>v grouping only).
  std::size_t max_group_size = 0;

  /// Elastic membership (requires lockstep; rna / eager-sgd / rna-h /
  /// async-ps): ranks listed here join and/or leave mid-training. The
  /// controller re-partitions the round membership, a joiner receives
  /// params + optimizer state from the round leader before its first
  /// round, and a leaver departs without being treated as a crash.
  std::vector<ElasticSchedule> elastic;

  /// Deterministic pacing: the controller hands each live worker exactly one
  /// compute token per round, so every protocol's schedule (and therefore
  /// its TrainResult) is a pure function of the seeds — the precondition
  /// that makes chaos failures replayable. Free-running (false) keeps the
  /// paper's wall-clock-raced behavior.
  bool lockstep = false;

  /// Fault injection (off by default); see FaultConfig.
  FaultConfig fault;

  std::uint64_t seed = 42;
  std::uint64_t model_seed = 7;

  /// Checks the cross-field invariants every runner depends on (world > 0,
  /// probe_choices within the world, positive eval cadence, …). Returns an
  /// empty string when the config is runnable, otherwise a description of
  /// the first violation. core::RunTraining rejects invalid configs with
  /// this message; CLIs should call it before running to fail fast.
  std::string Validate() const;

  /// True when any rank joins or leaves mid-training.
  bool HasElastic() const { return !elastic.empty(); }

 private:
  std::string ValidateFault() const;
  std::string ValidateElastic() const;
};

}  // namespace rna::train
