#pragma once

// Elastic-membership state machine, owned by a (group) controller.
//
//   kPending --BeginRound(join)--> kSyncing --OnSynced--> kActive
//   kActive  --BeginRound(leave)-> kLeft
//   any live state --OnDead-->     kDead
//
// A pending rank is scheduled to join later: its threads idle (no step
// tokens, no Go membership). At its join round it becomes syncing — listed
// in the Go's joiner tail so the round leader ships it params + optimizer
// state — and on the synced acknowledgement it turns active and enters the
// ring from the next round. A leave is a clean departure at the start of
// the scheduled round: the rank gets a personal exit Go, is removed from
// membership, and is *not* treated as a crash. Deaths (fault runtime) are
// terminal from any live state.
//
// The directory is single-threaded (controller-owned); the epoch counter
// bumps on every transition so tests can assert re-formation happened.

#include <cstdint>
#include <vector>

#include "rna/net/fabric.hpp"
#include "rna/train/config.hpp"

namespace rna::train {

enum class MemberState : int {
  kPending,  ///< scheduled to join at a later round
  kSyncing,  ///< joining: waiting for the leader's state transfer
  kActive,   ///< full ring member
  kLeft,     ///< departed cleanly (elastic leave)
  kDead,     ///< fail-stop crash or declared dead
};

class MembershipDirectory {
 public:
  /// Manages `ranks` (a controller's workers, in ring order). Entries of
  /// `schedule` for other ranks are ignored, so the flat engine and each
  /// hierarchical group controller can share one TrainerConfig schedule.
  MembershipDirectory(std::vector<net::Rank> ranks,
                      const std::vector<ElasticSchedule>& schedule);

  struct RoundDelta {
    std::vector<net::Rank> joining;  ///< went kPending -> kSyncing
    std::vector<net::Rank> leaving;  ///< went kActive  -> kLeft
  };

  /// Applies the schedule for `round`: pending ranks whose join round has
  /// arrived start syncing; active ranks whose leave round has arrived
  /// depart. Idempotent per round boundary (each transition fires once).
  RoundDelta BeginRound(std::size_t round);

  /// The joiner acknowledged the leader's state transfer: it is a full
  /// member from the next round on.
  void OnSynced(net::Rank rank);

  /// Fail-stop: terminal from any live state.
  void OnDead(net::Rank rank);

  MemberState StateOf(net::Rank rank) const;
  bool Manages(net::Rank rank) const;
  bool IsActive(net::Rank rank) const {
    return Manages(rank) && StateOf(rank) == MemberState::kActive;
  }
  bool IsSyncing(net::Rank rank) const {
    return Manages(rank) && StateOf(rank) == MemberState::kSyncing;
  }

  /// Active members in ring order (the order `ranks` was given in).
  std::vector<net::Rank> ActiveMembers() const;
  /// Ranks currently waiting on a state transfer, in ring order.
  std::vector<net::Rank> SyncingMembers() const;

  std::size_t ActiveCount() const { return active_count_; }
  std::size_t ManagedCount() const { return ranks_.size(); }

  /// Bumped on every state transition; tests use it to assert the ring
  /// actually re-formed.
  std::uint64_t Epoch() const { return epoch_; }

  std::size_t JoinedTotal() const { return joined_total_; }
  std::size_t LeftTotal() const { return left_total_; }

 private:
  struct Entry {
    net::Rank rank = 0;
    MemberState state = MemberState::kActive;
    std::size_t join_at = 0;
    std::size_t leave_at = ElasticSchedule::kNever;
  };

  std::size_t IndexOf(net::Rank rank) const;
  void Transition(Entry& e, MemberState to);

  std::vector<net::Rank> ranks_;
  std::vector<Entry> entries_;
  std::vector<std::size_t> index_of_rank_;  ///< rank -> entry index (or npos)
  std::size_t active_count_ = 0;
  std::uint64_t epoch_ = 0;
  std::size_t joined_total_ = 0;
  std::size_t left_total_ = 0;
};

}  // namespace rna::train
