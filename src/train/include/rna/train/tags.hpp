#pragma once

// Fabric tag allocation shared by all protocol implementations. Ring
// collective tags are unique per round (round-indexed disjoint ranges), so
// a stale chunk of an *aborted* collective — left in a mailbox when a
// member crashed mid-ring and the survivors timed out — can never alias a
// later round's traffic. Workers additionally purge the tag range of all
// earlier rounds before entering a new collective (Fabric::Purge).

#include <cstddef>

namespace rna::train::tags {

inline constexpr int kReady = 100;     ///< worker → controller: gradient buffered
inline constexpr int kGo = 103;        ///< controller → worker: run round / exit
inline constexpr int kRoundEnd = 105;  ///< worker → controller: round report
inline constexpr int kStep = 107;      ///< controller → worker: lockstep compute token
inline constexpr int kGoodbye = 108;   ///< worker → controller: fail-stop farewell
inline constexpr int kBarrier = 300;   ///< Horovod negotiation barrier (+1 used)
inline constexpr int kAvgReq = 400;    ///< AD-PSGD pairwise average request
inline constexpr int kAvgRep = 401;    ///< AD-PSGD pairwise average reply
inline constexpr int kGroupRing = 500; ///< hierarchical intra-group broadcast

// Round-indexed joiner state sync (elastic membership): the round leader
// ships params + optimizer state to each rank joining that round. One tag
// per round, in a dedicated range below the group-cast ranges.
inline constexpr int kJoinStateBase = 1 << 20;

inline constexpr int JoinStateTag(std::size_t round) {
  return kJoinStateBase + static_cast<int>(round);
}

// Round-indexed hierarchical group broadcast: one tag per round, in a
// dedicated range below the ring ranges.
inline constexpr int kGroupCastBase = 1 << 21;

inline constexpr int GroupCastTag(std::size_t round) {
  return kGroupCastBase + static_cast<int>(round);
}

inline constexpr int kRingBase = 1 << 22;
inline constexpr int kRingStride = 4096;  ///< supports rings up to ~2000 ranks

/// Tag base for the collective of `round` (unique per round).
inline constexpr int RingTag(std::size_t round) {
  return kRingBase + static_cast<int>(round) * kRingStride;
}

/// Tag base for Horovod's negotiation barrier of `round`.
inline constexpr int BarrierTag(std::size_t round) {
  return kBarrier + static_cast<int>(round % 2) * 8;
}

}  // namespace rna::train::tags
