#pragma once

// Fabric tag allocation shared by all protocol implementations. Ring
// collective tags alternate between two disjoint ranges by round parity so
// a rank one round ahead can never collide with in-flight messages of the
// previous round (relevant when a latency model reorders deliveries).

namespace rna::train::tags {

inline constexpr int kReady = 100;     ///< worker → controller: gradient buffered
inline constexpr int kGo = 103;        ///< controller → worker: run round / exit
inline constexpr int kRoundEnd = 105;  ///< worker → controller: round report
inline constexpr int kBarrier = 300;   ///< Horovod negotiation barrier (+1 used)
inline constexpr int kAvgReq = 400;    ///< AD-PSGD pairwise average request
inline constexpr int kAvgRep = 401;    ///< AD-PSGD pairwise average reply
inline constexpr int kGroupRing = 500; ///< hierarchical intra-group broadcast

inline constexpr int kRingBase = 4096;
inline constexpr int kRingStride = 4096;  ///< supports rings up to ~2000 ranks

/// Tag base for the collective of `round` (parity-alternated).
inline constexpr int RingTag(std::size_t round) {
  return kRingBase + static_cast<int>(round % 2) * kRingStride;
}

/// Tag base for Horovod's negotiation barrier of `round`.
inline constexpr int BarrierTag(std::size_t round) {
  return kBarrier + static_cast<int>(round % 2) * 8;
}

}  // namespace rna::train::tags
