#pragma once

// Binary checkpointing of training state: the flat parameter vector, the
// optimizer's momentum buffer, and the round counter. Lets a downstream
// user stop a long job and resume it, and lets experiments snapshot models
// for offline evaluation. Format: magic, version, dim, round, params[],
// velocity[] (little-endian floats).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rna::train {

struct Checkpoint {
  std::vector<float> params;
  std::vector<float> velocity;
  std::uint64_t round = 0;
};

/// Writes atomically (temp file + rename). Throws std::runtime_error on
/// I/O failure.
void SaveCheckpoint(const std::string& path, std::span<const float> params,
                    std::span<const float> velocity, std::uint64_t round);

/// Throws std::runtime_error on missing/corrupt files (bad magic, size
/// mismatch, truncation).
Checkpoint LoadCheckpoint(const std::string& path);

}  // namespace rna::train
