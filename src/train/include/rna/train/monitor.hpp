#pragma once

// The evaluation monitor: runs on its own thread during training, samples
// worker 0's published parameters, evaluates them on a validation
// subsample, records the convergence curve, and raises the stop signal on
// target-loss or early-stopping (Keras-style patience, as in the paper's
// §8.1 EarlyStopping setup). Protocol implementations observe the stop
// signal at safe points (see each protocol's stop protocol).

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"
#include "rna/data/dataset.hpp"
#include "rna/data/shard_view.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"
#include "rna/train/stage.hpp"

namespace rna::train {

/// Evaluates `params` on a dataset in bounded slices. `max_samples` > 0
/// caps the evaluation to the first that many samples.
nn::BatchResult EvaluateDataset(nn::Network& net, std::span<const float> params,
                                const data::Dataset& dataset,
                                std::size_t max_samples = 0);

class EvalMonitor {
 public:
  EvalMonitor(const TrainerConfig& config, const ModelFactory& factory,
              const data::Dataset& val_data);
  ~EvalMonitor();

  EvalMonitor(const EvalMonitor&) = delete;
  EvalMonitor& operator=(const EvalMonitor&) = delete;

  /// Starts the monitor thread watching `board`. `rounds_done` is the
  /// protocol's round counter (for curve annotation); the monitor sets
  /// `stop` when its stopping criteria fire.
  void Start(const ParamBoard& board, std::atomic<bool>& stop,
             const std::atomic<std::size_t>& rounds_done);

  /// Signals the protocol has finished; joins the monitor thread.
  void Finish();

  const std::vector<CurvePoint>& Curve() const { return curve_; }
  bool ReachedTarget() const { return reached_target_; }
  bool EarlyStopped() const { return early_stopped_; }

  /// Full-validation-set evaluation of the given parameters.
  nn::BatchResult FullEval(std::span<const float> params);

 private:
  void Loop();
  bool WaitPeriod();
  nn::BatchResult EvalSubsample(std::span<const float> params);

  TrainerConfig config_;
  std::unique_ptr<nn::Network> net_;
  // Zero-copy view over the validation set; subsample and sliced evals
  // batch through it instead of re-indexing the dataset per call.
  data::ShardView val_;
  common::Rng rng_;

  const ParamBoard* board_ = nullptr;
  std::atomic<bool>* stop_ = nullptr;
  const std::atomic<std::size_t>* rounds_ = nullptr;

  // Finish() raises finished_ under mu_ and notifies cv_, so the monitor
  // thread's between-eval wait is interruptible instead of a plain sleep.
  common::Mutex mu_;
  common::CondVar cv_;
  bool finished_ RNA_GUARDED_BY(mu_) = false;
  std::thread thread_;

  // Written by the monitor thread only; published to the caller by the
  // thread join inside Finish().
  std::vector<CurvePoint> curve_;
  bool reached_target_ = false;
  bool early_stopped_ = false;
};

}  // namespace rna::train
