#include "rna/train/config.hpp"

#include <sstream>

namespace rna::train {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHorovod:
      return "horovod";
    case Protocol::kEagerSgd:
      return "eager-sgd";
    case Protocol::kAdPsgd:
      return "ad-psgd";
    case Protocol::kRna:
      return "rna";
    case Protocol::kRnaHierarchical:
      return "rna-h";
    case Protocol::kSgp:
      return "sgp";
    case Protocol::kCentralizedPs:
      return "async-ps";
  }
  return "?";
}

std::optional<Protocol> ParseProtocol(std::string_view name) {
  if (name == "horovod") return Protocol::kHorovod;
  if (name == "eager-sgd" || name == "eager") return Protocol::kEagerSgd;
  if (name == "ad-psgd" || name == "adpsgd") return Protocol::kAdPsgd;
  if (name == "rna") return Protocol::kRna;
  if (name == "rna-h") return Protocol::kRnaHierarchical;
  if (name == "sgp") return Protocol::kSgp;
  if (name == "async-ps") return Protocol::kCentralizedPs;
  return std::nullopt;
}

std::string TrainerConfig::Validate() const {
  std::ostringstream why;
  if (world == 0) {
    why << "world must be >= 1 (got 0)";
  } else if (batch_size == 0) {
    why << "batch_size must be >= 1 (got 0)";
  } else if (max_rounds == 0) {
    why << "max_rounds must be >= 1 (got 0)";
  } else if (probe_choices == 0) {
    why << "probe_choices must be >= 1 (got 0)";
  } else if (probe_choices > world) {
    why << "probe_choices (" << probe_choices << ") cannot exceed world ("
        << world << "): the controller samples distinct workers";
  } else if (staleness_bound == 0) {
    why << "staleness_bound must be >= 1 (got 0): the stage needs room for "
           "at least the newest gradient";
  } else if (eval_period_s <= 0.0) {
    why << "eval_period_s must be positive (got " << eval_period_s << ")";
  } else if (eval_samples == 0) {
    why << "eval_samples must be >= 1 (got 0)";
  } else if (lr_decay_factor < 0.0) {
    // factor == 0 is allowed: tests freeze training by decaying LR to zero.
    why << "lr_decay_factor must be non-negative (got " << lr_decay_factor
        << ")";
  } else if (delay_scale < 0.0) {
    why << "delay_scale must be non-negative (got " << delay_scale << ")";
  } else if (sleep_per_step < 0.0 || sleep_per_step_sq < 0.0) {
    why << "sleep_per_step / sleep_per_step_sq must be non-negative";
  } else if (calibration_iters == 0 &&
             protocol == Protocol::kRnaHierarchical) {
    why << "calibration_iters must be >= 1 for rna-h (grouping needs "
           "measured iteration times)";
  } else if ((protocol == Protocol::kAdPsgd || protocol == Protocol::kSgp) &&
             world < 2) {
    why << ProtocolName(protocol) << " needs at least two workers (got "
        << world << ")";
  }
  return why.str();
}

}  // namespace rna::train
