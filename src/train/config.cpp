#include "rna/train/config.hpp"

namespace rna::train {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHorovod:
      return "horovod";
    case Protocol::kEagerSgd:
      return "eager-sgd";
    case Protocol::kAdPsgd:
      return "ad-psgd";
    case Protocol::kRna:
      return "rna";
    case Protocol::kRnaHierarchical:
      return "rna-h";
    case Protocol::kSgp:
      return "sgp";
    case Protocol::kCentralizedPs:
      return "async-ps";
  }
  return "?";
}

}  // namespace rna::train
