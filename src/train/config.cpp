#include "rna/train/config.hpp"

#include <sstream>

namespace rna::train {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHorovod:
      return "horovod";
    case Protocol::kEagerSgd:
      return "eager-sgd";
    case Protocol::kAdPsgd:
      return "ad-psgd";
    case Protocol::kRna:
      return "rna";
    case Protocol::kRnaHierarchical:
      return "rna-h";
    case Protocol::kSgp:
      return "sgp";
    case Protocol::kCentralizedPs:
      return "async-ps";
  }
  return "?";
}

std::optional<Protocol> ParseProtocol(std::string_view name) {
  if (name == "horovod") return Protocol::kHorovod;
  if (name == "eager-sgd" || name == "eager") return Protocol::kEagerSgd;
  if (name == "ad-psgd" || name == "adpsgd") return Protocol::kAdPsgd;
  if (name == "rna") return Protocol::kRna;
  if (name == "rna-h") return Protocol::kRnaHierarchical;
  if (name == "sgp") return Protocol::kSgp;
  if (name == "async-ps") return Protocol::kCentralizedPs;
  return std::nullopt;
}

std::string TrainerConfig::Validate() const {
  std::ostringstream why;
  if (world == 0) {
    why << "world must be >= 1 (got 0)";
  } else if (batch_size == 0) {
    why << "batch_size must be >= 1 (got 0)";
  } else if (max_rounds == 0) {
    why << "max_rounds must be >= 1 (got 0)";
  } else if (probe_choices == 0) {
    why << "probe_choices must be >= 1 (got 0)";
  } else if (probe_choices > world) {
    why << "probe_choices (" << probe_choices << ") cannot exceed world ("
        << world << "): the controller samples distinct workers";
  } else if (staleness_bound == 0) {
    why << "staleness_bound must be >= 1 (got 0): the stage needs room for "
           "at least the newest gradient";
  } else if (eval_period_s <= 0.0) {
    why << "eval_period_s must be positive (got " << eval_period_s << ")";
  } else if (eval_samples == 0) {
    why << "eval_samples must be >= 1 (got 0)";
  } else if (lr_decay_factor < 0.0) {
    // factor == 0 is allowed: tests freeze training by decaying LR to zero.
    why << "lr_decay_factor must be non-negative (got " << lr_decay_factor
        << ")";
  } else if (delay_scale < 0.0) {
    why << "delay_scale must be non-negative (got " << delay_scale << ")";
  } else if (sleep_per_step < 0.0 || sleep_per_step_sq < 0.0) {
    why << "sleep_per_step / sleep_per_step_sq must be non-negative";
  } else if (calibration_iters == 0 &&
             protocol == Protocol::kRnaHierarchical) {
    why << "calibration_iters must be >= 1 for rna-h (grouping needs "
           "measured iteration times)";
  } else if ((protocol == Protocol::kAdPsgd || protocol == Protocol::kSgp) &&
             world < 2) {
    why << ProtocolName(protocol) << " needs at least two workers (got "
        << world << ")";
  } else if (compression == collectives::Compression::kTopK &&
             (topk_fraction <= 0.0 || topk_fraction > 1.0)) {
    why << "topk_fraction must be in (0, 1] (got " << topk_fraction
        << ") when compression is topk";
  } else if (schedule == collectives::Schedule::kTree && world < 2) {
    why << "the tree schedule needs at least two workers (got " << world
        << "); use ring for a single-worker run";
  } else if ((schedule != collectives::Schedule::kRing ||
              compression != collectives::Compression::kNone) &&
             (protocol == Protocol::kAdPsgd || protocol == Protocol::kSgp ||
              protocol == Protocol::kCentralizedPs)) {
    why << ProtocolName(protocol)
        << " has no allreduce path: --schedule/--compression only apply to "
           "horovod, eager-sgd, rna, and rna-h";
  } else if (ps_shards == 0) {
    why << "ps_shards must be >= 1 (got 0)";
  } else if (ps_shards > 1 && protocol != Protocol::kRnaHierarchical &&
             protocol != Protocol::kCentralizedPs) {
    why << ProtocolName(protocol)
        << " has no parameter server: ps_shards > 1 only applies to rna-h "
           "and async-ps";
  } else if (ps_fan_in == 1) {
    why << "ps_fan_in must be 0 (flat) or >= 2 (a tree with fan-in 1 never "
           "converges on a root)";
  } else if (ps_fan_in > 0 && protocol != Protocol::kRnaHierarchical) {
    why << ProtocolName(protocol)
        << " has no PS tree: ps_fan_in only applies to rna-h";
  } else if (ps_fan_in > 0 && ps_parent_sync_every == 0) {
    why << "ps_parent_sync_every must be >= 1 when ps_fan_in is set";
  } else if (max_group_size > 0 && protocol != Protocol::kRnaHierarchical) {
    why << ProtocolName(protocol)
        << " has no speed groups: max_group_size only applies to rna-h";
  } else if (std::string elastic_why = ValidateElastic();
             !elastic_why.empty()) {
    why << elastic_why;
  } else if (std::string fault_why = ValidateFault(); !fault_why.empty()) {
    why << fault_why;
  }
  return why.str();
}

std::string TrainerConfig::ValidateElastic() const {
  if (elastic.empty()) return {};
  std::ostringstream why;
  const bool supported = protocol == Protocol::kRna ||
                         protocol == Protocol::kEagerSgd ||
                         protocol == Protocol::kRnaHierarchical ||
                         protocol == Protocol::kCentralizedPs;
  if (!supported) {
    why << ProtocolName(protocol)
        << " cannot change membership mid-training: elastic schedules only "
           "apply to rna, eager-sgd, rna-h, and async-ps";
    return why.str();
  }
  if (!lockstep) {
    why << "elastic membership requires lockstep: a joiner's state sync "
           "must land on a deterministic round boundary";
    return why.str();
  }
  std::size_t founding = 0;
  std::vector<bool> seen(world, false);
  for (const ElasticSchedule& e : elastic) {
    if (e.rank >= world) {
      why << "elastic schedule targets rank " << e.rank
          << " outside the world of " << world;
    } else if (seen[e.rank]) {
      why << "elastic schedule lists rank " << e.rank << " twice";
    } else if (e.join_at_round == ElasticSchedule::kNever) {
      why << "elastic schedule for rank " << e.rank
          << " never joins; drop the rank from the world instead";
    } else if (e.join_at_round >= max_rounds) {
      why << "elastic schedule join_at_round (" << e.join_at_round
          << ") for rank " << e.rank << " is beyond max_rounds ("
          << max_rounds << "): the join would never fire";
    } else if (e.leave_at_round != ElasticSchedule::kNever &&
               e.leave_at_round <= e.join_at_round) {
      why << "elastic schedule for rank " << e.rank << " leaves (round "
          << e.leave_at_round << ") before it has joined (round "
          << e.join_at_round << ")";
    } else if (e.leave_at_round != ElasticSchedule::kNever &&
               e.leave_at_round >= max_rounds) {
      why << "elastic schedule leave_at_round (" << e.leave_at_round
          << ") for rank " << e.rank << " is beyond max_rounds ("
          << max_rounds << "): the leave would never fire";
    }
    if (why.tellp() != 0) return why.str();
    seen[e.rank] = true;
  }
  for (std::size_t w = 0; w < world; ++w) {
    bool late_joiner = false;
    for (const ElasticSchedule& e : elastic) {
      if (e.rank == w && e.join_at_round > 0) late_joiner = true;
    }
    if (!late_joiner) ++founding;
  }
  if (founding == 0) {
    why << "elastic schedule leaves no founding member: at least one rank "
           "must be active at round 0 to lead the first state sync";
  }
  return why.str();
}

std::string TrainerConfig::ValidateFault() const {
  std::ostringstream why;
  const auto bad_prob = [](double p) { return p < 0.0 || p > 1.0; };
  if (bad_prob(fault.drop_prob)) {
    why << "fault.drop_prob must be a probability in [0, 1] (got "
        << fault.drop_prob << ")";
  } else if (bad_prob(fault.dup_prob)) {
    why << "fault.dup_prob must be a probability in [0, 1] (got "
        << fault.dup_prob << ")";
  } else if (bad_prob(fault.delay_prob)) {
    why << "fault.delay_prob must be a probability in [0, 1] (got "
        << fault.delay_prob << ")";
  } else if (bad_prob(fault.ps_drop_prob)) {
    why << "fault.ps_drop_prob must be a probability in [0, 1] (got "
        << fault.ps_drop_prob << ")";
  } else if (fault.delay_s < 0.0) {
    why << "fault.delay_s must be non-negative (got " << fault.delay_s << ")";
  } else if (fault.Enabled() && fault.retry_budget == 0) {
    why << "fault.retry_budget must be >= 1 (got 0): a zero budget makes "
           "every PS call fail unconditionally";
  } else if (fault.Enabled() &&
             (fault.retry_timeout_s <= 0.0 ||
              fault.collective_timeout_s <= 0.0 ||
              fault.probe_timeout_s <= 0.0)) {
    why << "fault recovery timeouts (retry_timeout_s, collective_timeout_s, "
           "probe_timeout_s) must be positive";
  } else if (fault.Enabled() && fault.dead_after_misses == 0) {
    why << "fault.dead_after_misses must be >= 1 (got 0)";
  } else if ((fault.drop_prob > 0.0 || fault.dup_prob > 0.0 ||
              fault.ps_drop_prob > 0.0) &&
             (protocol == Protocol::kHorovod || protocol == Protocol::kSgp)) {
    why << ProtocolName(protocol)
        << " cannot run on a lossy fabric: its untimed collectives deadlock "
           "on a dropped message (use delay faults instead)";
  } else {
    for (const WorkerFaultSchedule& w : fault.workers) {
      if (w.rank >= world) {
        why << "fault schedule targets rank " << w.rank
            << " outside the world of " << world;
      } else if (w.crash_in_round != WorkerFaultSchedule::kNever &&
                 w.crash_in_round >= max_rounds) {
        why << "fault schedule crash_in_round (" << w.crash_in_round
            << ") is beyond max_rounds (" << max_rounds
            << "): the crash step would never fire";
      } else if (w.hang_for_s < 0.0 || w.flaky_delay_s < 0.0) {
        why << "fault schedule hang_for_s / flaky_delay_s must be "
               "non-negative";
      } else if (bad_prob(w.flaky_prob)) {
        why << "fault schedule flaky_prob must be a probability in [0, 1] "
               "(got "
            << w.flaky_prob << ")";
      } else if (w.HasCrash() && (protocol == Protocol::kHorovod ||
                                  protocol == Protocol::kSgp)) {
        why << ProtocolName(protocol)
            << " cannot survive a crash fault: its collective needs every "
               "member (use hang/flaky faults instead)";
      }
      if (why.tellp() != 0) break;
    }
  }
  return why.str();
}

}  // namespace rna::train
