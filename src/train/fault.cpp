#include "rna/train/fault.hpp"

#include "rna/common/check.hpp"
#include "rna/common/rng.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/ps/server.hpp"

namespace rna::train {

namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  common::SplitMix64 sm(h ^ (v + 0x9e3779b97f4a7c15ULL));
  return sm.Next();
}

/// Deterministic uniform in [0, 1) for the flaky-window coin flips.
double FlakyDraw(std::uint64_t seed, std::size_t rank, std::size_t iter) {
  std::uint64_t h = Mix(seed, 0xF1A2Full);
  h = Mix(h, rank);
  h = Mix(h, iter);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t EffectiveFaultSeed(const TrainerConfig& config) {
  if (config.fault.seed != 0) return config.fault.seed;
  return common::SplitMix64(config.seed ^ 0xC4A05C4A05ull).Next();
}

std::shared_ptr<net::FaultPlan> BuildFaultPlan(const TrainerConfig& config) {
  const FaultConfig& f = config.fault;
  const bool net_faults = f.drop_prob > 0.0 || f.dup_prob > 0.0 ||
                          f.delay_prob > 0.0 || f.ps_drop_prob > 0.0;
  if (!net_faults) return nullptr;

  auto plan = std::make_shared<net::FaultPlan>(EffectiveFaultSeed(config));
  if (f.ps_drop_prob > 0.0) {
    // PS traffic gets its own drop rate (first match wins, so this rule
    // shadows the catch-all on the PS tags); dup/delay still apply.
    net::FaultRule ps_rule;
    ps_rule.tag_lo = ps::PsTags::kRequest;
    ps_rule.tag_hi = ps::PsTags::kReply;
    ps_rule.drop_prob = f.ps_drop_prob;
    ps_rule.dup_prob = f.dup_prob;
    ps_rule.delay_prob = f.delay_prob;
    ps_rule.delay_s = f.delay_s;
    plan->AddRule(ps_rule);
  }
  if (f.drop_prob > 0.0 || f.dup_prob > 0.0 || f.delay_prob > 0.0) {
    net::FaultRule all;
    all.drop_prob = f.drop_prob;
    all.dup_prob = f.dup_prob;
    all.delay_prob = f.delay_prob;
    all.delay_s = f.delay_s;
    plan->AddRule(all);
  }
  return plan;
}

FaultRuntime::FaultRuntime(const TrainerConfig& config)
    : fault_seed_(EffectiveFaultSeed(config)),
      schedules_(config.world, nullptr),
      storage_(config.fault.workers),
      alive_(config.world) {
  for (auto& a : alive_) a.store(true, std::memory_order_relaxed);
  for (const WorkerFaultSchedule& w : storage_) {
    RNA_CHECK_MSG(w.rank < config.world, "fault schedule rank out of range");
    schedules_[w.rank] = &w;
  }
}

IterationFate FaultRuntime::BeforeIteration(std::size_t rank,
                                            std::size_t iter) {
  if (!Alive(rank)) return IterationFate::kCrash;
  const WorkerFaultSchedule* s = ScheduleFor(rank);
  if (s == nullptr) return IterationFate::kRun;
  if (iter >= s->crash_at_iteration) {
    // >= (not ==) so a rank revived by mistake can never compute past its
    // scheduled death.
    obs::CountMetric("fault.worker.crashes");
    return IterationFate::kCrash;
  }
  if (iter == s->hang_at_iteration && s->hang_for_s > 0.0) {
    obs::CountMetric("fault.worker.hangs");
    obs::ObserveMetric("fault.worker.hang_s", s->hang_for_s);
    common::SleepFor(s->hang_for_s);
  }
  if (iter >= s->flaky_from_iteration && iter < s->flaky_until_iteration &&
      s->flaky_prob > 0.0 &&
      FlakyDraw(fault_seed_, rank, iter) < s->flaky_prob) {
    obs::CountMetric("fault.worker.flaky_delays");
    common::SleepFor(s->flaky_delay_s);
  }
  return IterationFate::kRun;
}

bool FaultRuntime::ShouldCrashInRound(std::size_t rank,
                                      std::size_t round) const {
  const WorkerFaultSchedule* s = ScheduleFor(rank);
  return s != nullptr && s->crash_in_round != WorkerFaultSchedule::kNever &&
         round >= s->crash_in_round && Alive(rank);
}

void FaultRuntime::Kill(std::size_t rank) {
  alive_[rank].store(false, std::memory_order_release);
}

std::size_t FaultRuntime::LiveCount() const {
  std::size_t n = 0;
  for (const auto& a : alive_) {
    if (a.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

RoundRobinGate::RoundRobinGate(std::size_t world)
    : retired_(world, false), live_(world) {
  RNA_CHECK_MSG(world > 0, "gate needs at least one rank");
}

void RoundRobinGate::AdvanceLocked() {
  if (live_ == 0) return;
  do {
    cursor_ = (cursor_ + 1) % retired_.size();
  } while (retired_[cursor_]);
}

bool RoundRobinGate::AcquireTurn(std::size_t rank) {
  common::MutexLock lock(mu_);
  while (!down_ && !retired_[rank] && cursor_ != rank) cv_.Wait(mu_);
  return !down_ && !retired_[rank];
}

bool RoundRobinGate::AcquireTurnFor(std::size_t rank,
                                    common::Seconds timeout) {
  const auto deadline =
      common::SteadyClock::now() + common::FromSeconds(timeout);
  common::MutexLock lock(mu_);
  for (;;) {
    if (down_ || retired_[rank]) return false;
    if (cursor_ == rank) return true;
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      return !down_ && !retired_[rank] && cursor_ == rank;
    }
  }
}

void RoundRobinGate::ReleaseTurn(std::size_t rank) {
  {
    common::MutexLock lock(mu_);
    if (cursor_ == rank && !retired_[rank]) AdvanceLocked();
  }
  cv_.NotifyAll();
}

void RoundRobinGate::Retire(std::size_t rank) {
  {
    common::MutexLock lock(mu_);
    if (retired_[rank]) return;
    retired_[rank] = true;
    --live_;
    if (cursor_ == rank && live_ > 0) AdvanceLocked();
  }
  cv_.NotifyAll();
}

void RoundRobinGate::Shutdown() {
  {
    common::MutexLock lock(mu_);
    down_ = true;
  }
  cv_.NotifyAll();
}

}  // namespace rna::train
