#include "rna/train/monitor.hpp"

#include <limits>

#include "rna/common/check.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"

namespace rna::train {

EvalMonitor::EvalMonitor(const TrainerConfig& config,
                         const ModelFactory& factory,
                         const data::Dataset& val_data)
    : config_(config),
      net_(factory(config.model_seed)),
      val_(data::ShardView::All(val_data)),
      rng_(config.seed + 5000) {}

EvalMonitor::~EvalMonitor() { Finish(); }

void EvalMonitor::Start(const ParamBoard& board, std::atomic<bool>& stop,
                        const std::atomic<std::size_t>& rounds_done) {
  RNA_CHECK_MSG(!thread_.joinable(), "monitor already started");
  board_ = &board;
  stop_ = &stop;
  rounds_ = &rounds_done;
  {
    common::MutexLock lock(mu_);
    finished_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void EvalMonitor::Finish() {
  if (!thread_.joinable()) return;
  {
    common::MutexLock lock(mu_);
    finished_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
}

// Waits out one eval period; returns false as soon as Finish() is called.
bool EvalMonitor::WaitPeriod() {
  const auto deadline =
      common::SteadyClock::now() + common::FromSeconds(config_.eval_period_s);
  common::MutexLock lock(mu_);
  while (!finished_) {
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
  }
  return !finished_;
}

nn::BatchResult EvalMonitor::EvalSubsample(std::span<const float> params) {
  net_->SetParamsFrom(params);
  const std::size_t n = std::min(config_.eval_samples, val_.Size());
  std::vector<std::size_t> indices(n);
  for (auto& i : indices) i = rng_.UniformInt(val_.Size());
  return net_->Evaluate(val_.MakeBatch(indices));
}

nn::BatchResult EvaluateDataset(nn::Network& net, std::span<const float> params,
                                const data::Dataset& dataset,
                                std::size_t max_samples) {
  // A training replica arrives here with its arena pinned to the training
  // batch's high-water; eval slices are far larger, so let the short
  // region grow again for this terminal pass.
  if (net.ArenaEnabled() && net.ComputeArena().ExactMode()) {
    net.ComputeArena().Relax();
  }
  net.SetParamsFrom(params);
  // Evaluate in slices to bound per-batch memory for sequence datasets;
  // slicing goes through a zero-copy view, no scratch index vector.
  const data::ShardView view = data::ShardView::All(dataset);
  nn::BatchResult total;
  const std::size_t limit = max_samples > 0
                                ? std::min(max_samples, dataset.Size())
                                : dataset.Size();
  const std::size_t slice = 512;
  double loss_weighted = 0.0;
  for (std::size_t start = 0; start < limit; start += slice) {
    const std::size_t end = std::min(start + slice, limit);
    nn::BatchResult r = net.Evaluate(view.MakeBatchRange(start, end - start));
    total.correct += r.correct;
    total.total += r.total;
    loss_weighted += r.loss * static_cast<double>(r.total);
  }
  total.loss = total.total ? loss_weighted / static_cast<double>(total.total)
                           : 0.0;
  return total;
}

nn::BatchResult EvalMonitor::FullEval(std::span<const float> params) {
  return EvaluateDataset(*net_, params, val_.Owner());
}

void EvalMonitor::Loop() {
  const obs::TrackHandle track = obs::RegisterTrack("monitor");
  obs::ScopedTimer curve_clock({}, obs::Category::kOther, "monitor_total");
  double best_loss = std::numeric_limits<double>::infinity();
  std::size_t evals_since_best = 0;
  std::int64_t last_version = -1;

  while (WaitPeriod()) {
    std::vector<float> params;
    const std::int64_t version = board_->ReadIfNewer(last_version, &params);
    if (version <= last_version) continue;  // nothing new published yet
    last_version = version;

    obs::ScopedTimer eval_timer(track, obs::Category::kEval, "eval");
    const nn::BatchResult eval = EvalSubsample(params);
    CurvePoint point;
    point.time = curve_clock.Elapsed();
    point.round = rounds_->load();
    point.loss = eval.loss;
    point.accuracy = eval.Accuracy();
    eval_timer.SetArg("round", static_cast<double>(point.round));
    eval_timer.SetArg("loss", point.loss);
    eval_timer.Stop();
    obs::CountMetric("monitor.evals");
    obs::SetGauge("monitor.latest_loss", point.loss);
    curve_.push_back(point);

    if (config_.target_loss > 0.0 && eval.loss <= config_.target_loss) {
      reached_target_ = true;
      stop_->store(true);
      return;
    }
    if (eval.loss < best_loss - 1e-4) {
      best_loss = eval.loss;
      evals_since_best = 0;
    } else if (++evals_since_best >= config_.patience && config_.patience > 0) {
      early_stopped_ = true;
      stop_->store(true);
      return;
    }
  }
}

}  // namespace rna::train
