#pragma once

// The three comparison systems of the paper's evaluation (§7.3), each
// re-implemented from scratch on the shared substrates:
//
//  * Horovod — the BSP state of the art: a negotiation barrier (the
//    in-process equivalent of NEGOTIATE_ALLREDUCE) followed by a blocking
//    ring allreduce every iteration; every worker waits for the slowest.
//  * AD-PSGD — asynchronous decentralized parallel SGD: each worker
//    independently computes, then performs an *atomic* pairwise model
//    average with one random neighbor; the atomicity cost (the peer's
//    model is locked during the exchange) is real in this implementation.
//  * eager-SGD — partial collectives triggered by the *majority* rule,
//    running on the same cross-iteration engine as RNA so the comparison
//    isolates the trigger policy.

#include "rna/data/dataset.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"

namespace rna::baselines {

train::TrainResult RunHorovod(const train::TrainerConfig& config,
                              const train::ModelFactory& factory,
                              const data::Dataset& train_data,
                              const data::Dataset& val_data);

train::TrainResult RunAdPsgd(const train::TrainerConfig& config,
                             const train::ModelFactory& factory,
                             const data::Dataset& train_data,
                             const data::Dataset& val_data);

train::TrainResult RunEagerSgd(const train::TrainerConfig& config,
                               const train::ModelFactory& factory,
                               const data::Dataset& train_data,
                               const data::Dataset& val_data);

/// Stochastic Gradient Push (Assran et al., discussed in the paper's §9):
/// PushSum gossip over a time-varying directed one-out-degree graph. Each
/// iteration a worker updates its (biased) model with a local gradient at
/// the de-biased point x/w, then pushes half of (x, w) to one neighbor and
/// folds in the halves it receives. Robust to communication constraints;
/// needs O(log P) steps to propagate an update globally — the contrast the
/// paper draws with RNA's O(1) collective.
train::TrainResult RunSgp(const train::TrainerConfig& config,
                          const train::ModelFactory& factory,
                          const data::Dataset& train_data,
                          const data::Dataset& val_data);

/// The classic centralized algorithm (paper §2.2): an asynchronous
/// parameter server. Each worker independently computes a gradient at its
/// last pulled model and PushPulls an SGD delta; the server applies deltas
/// in arrival order. No barrier — but every worker talks to one server,
/// the communication hotspot decentralized training removes.
train::TrainResult RunCentralizedPs(const train::TrainerConfig& config,
                                    const train::ModelFactory& factory,
                                    const data::Dataset& train_data,
                                    const data::Dataset& val_data);

}  // namespace rna::baselines
