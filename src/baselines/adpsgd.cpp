#include <atomic>
#include <thread>

#include "rna/baselines/baselines.hpp"
#include "rna/common/check.hpp"
#include "rna/common/mutex.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/train/fault.hpp"
#include "rna/tensor/ops.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::baselines {

using namespace rna::train;

// AD-PSGD (Lian et al.): every worker loops independently —
//   x ← model; g ← ∇f(x; ξ)                       (compute)
//   atomically average own model with one random peer's (gossip)
//   x ← averaged − γ·g                            (local update)
// The pairwise average is made atomic by the passive side: a responder
// thread folds the requester's parameters into its own under the model
// lock and replies with the averaged vector, so both sides end the
// exchange with identical models. The requester blocks for the reply —
// this serialization is the "significant synchronization overhead to
// ensure atomicity" the paper attributes to AD-PSGD (§1). One-sided
// request/response cannot deadlock: responders never initiate.
TrainResult RunAdPsgd(const TrainerConfig& config, const ModelFactory& factory,
                      const data::Dataset& train_data,
                      const data::Dataset& val_data) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 2, "AD-PSGD needs at least two workers");
  net::Fabric fabric(world);

  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const bool faulty = config.fault.Enabled();
  const bool lockstep = config.lockstep;
  // Serializes iterations (compute + gossip) into rank order under
  // lockstep; crashed or finished ranks retire from the rotation.
  RoundRobinGate gate(world);

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  ParamBoard board(init);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> gradients{0};
  std::atomic<std::size_t> workers_running{world};

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  // Each worker's model, guarded by its own mutex (the AD-PSGD atomicity
  // lock).
  std::vector<std::vector<float>> models(world, init);
  std::vector<common::Mutex> model_mu(world);
  std::vector<WorkerTimeBreakdown> wait_comm(world);

  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  // Responder threads: serve pairwise-average requests until every active
  // worker has finished (an active requester is never left hanging).
  std::vector<std::thread> responders;
  responders.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    responders.emplace_back([&, w] {
      while (workers_running.load() > 0) {
        // A crashed rank answers no more gossip; requesters discover that
        // through their reply timeout and mark the peer dead.
        if (faulty && !faults.Alive(w)) break;
        auto req = fabric.RecvFor(w, tags::kAvgReq, 0.002);
        if (!req.has_value()) continue;
        net::Message reply;
        reply.tag = tags::kAvgRep;
        {
          common::MutexLock lock(model_mu[w]);
          RNA_CHECK(req->data.size() == dim);
          auto& mine = models[w];
          for (std::size_t i = 0; i < dim; ++i) {
            mine[i] = 0.5f * (mine[i] + req->data[i]);
          }
          reply.data = mine;
        }
        fabric.Send(w, req->src, std::move(reply));
      }
    });
  }

  std::vector<std::thread> trainers;
  trainers.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    trainers.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "gossip"));
      common::Rng rng(config.seed + 7000 + 13 * w);
      std::vector<float> grad(dim);
      std::vector<float> local(dim);
      // AD-PSGD uses plain SGD on the averaged model; momentum state would
      // not be consistent across gossip exchanges.
      const auto lr = static_cast<float>(config.sgd.learning_rate);

      // Peers this trainer has watched time out (a reply never came); a
      // dead peer is skipped deterministically via the shared FaultRuntime,
      // a silently-lossy one via this local suspicion list.
      std::vector<bool> peer_suspect(world, false);

      for (std::size_t iter = 0; iter < config.max_rounds && !stop.load();
           ++iter) {
        if (lockstep && !gate.AcquireTurn(w)) break;
        if (faulty && faults.BeforeIteration(w, workers[w]->Iterations()) ==
                          IterationFate::kCrash) {
          faults.Kill(w);
          obs::CountMetric("fault.worker.goodbyes");
          break;  // gate.Retire below releases the rotation
        }
        {
          common::MutexLock lock(model_mu[w]);
          local = models[w];
        }
        workers[w]->ComputeGradient(local, grad);

        // Gossip: send my current model, receive the pairwise average. The
        // peer is always drawn — even when it will be skipped — so the rng
        // stream (and therefore the replay) is independent of failures.
        std::size_t peer = rng.UniformInt(world - 1);
        if (peer >= w) ++peer;
        bool gossiped = false;
        std::optional<net::Message> rep;
        const bool peer_usable =
            !faulty || (faults.Alive(peer) && !peer_suspect[peer]);
        if (peer_usable) {
          if (faulty) {
            // A reply from a timed-out past exchange must not satisfy this
            // one.
            while (fabric.TryRecv(w, tags::kAvgRep).has_value()) {
              obs::CountMetric("fault.gossip_stale_replies");
            }
          }
          net::Message req;
          req.tag = tags::kAvgReq;
          {
            common::MutexLock lock(model_mu[w]);
            req.data = models[w];
          }
          obs::ScopedTimer comm_timer(track, obs::Category::kComm, "gossip",
                                      &wait_comm[w].comm);
          comm_timer.SetArg("iter", static_cast<double>(iter));
          comm_timer.SetArg("peer", static_cast<double>(peer));
          fabric.Send(w, peer, std::move(req));
          if (faulty) {
            rep = fabric.RecvFor(w, tags::kAvgRep,
                                 config.fault.collective_timeout_s);
          } else {
            // Lossless fabric: wait for the reply in bounded slices so the
            // wait still wakes on shutdown (no untimed receive anywhere).
            for (;;) {
              rep = fabric.RecvFor(w, tags::kAvgRep, 0.05);
              if (rep.has_value() || fabric.IsClosed(w)) break;
            }
          }
          comm_timer.Stop();
          if (rep.has_value()) {
            gossiped = true;
          } else if (!faulty || fabric.IsClosed(w)) {
            break;  // fabric shut down mid-exchange
          } else {
            // Timed out: the peer is crashed or the link ate the exchange.
            // Fall back to a local SGD step and stop gossiping with it.
            peer_suspect[peer] = true;
            obs::CountMetric("fault.gossip_timeouts");
          }
        } else {
          obs::CountMetric("fault.gossip_skipped");
        }

        {
          common::MutexLock lock(model_mu[w]);
          auto& mine = models[w];
          if (gossiped) {
            // Adopt the averaged model, then apply the local gradient.
            for (std::size_t i = 0; i < dim; ++i) {
              mine[i] = rep->data[i] - lr * grad[i];
            }
          } else {
            // Degraded iterate: plain local SGD, no averaging.
            for (std::size_t i = 0; i < dim; ++i) {
              mine[i] -= lr * grad[i];
            }
          }
          // Publish while still holding model_mu[0]: a responder may fold a
          // peer's gossip into models[0] at any moment. ParamBoard has its
          // own internal mutex and is never held while taking a model lock,
          // so the nesting cannot invert.
          if (w == 0) {
            board.Publish(mine, static_cast<std::int64_t>(iter) + 1);
          }
        }
        gradients.fetch_add(1);
        if (w == 0) {
          rounds_done.fetch_add(1);
        }
        if (lockstep) gate.ReleaseTurn(w);
      }
      // Retire also releases a turn still held after a break.
      if (lockstep) gate.Retire(w);
      workers_running.fetch_sub(1);
    });
  }

  for (auto& t : trainers) t.join();
  for (auto& t : responders) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();

  // The canonical AD-PSGD model is the average over the *surviving*
  // replicas (a crashed worker's model froze at its death).
  std::vector<float> consensus(dim, 0.0f);
  std::size_t survivors = 0;
  for (std::size_t w = 0; w < world; ++w) {
    if (faulty && !faults.Alive(w)) continue;
    ++survivors;
  }
  RNA_CHECK_MSG(survivors > 0, "every AD-PSGD worker crashed");
  for (std::size_t w = 0; w < world; ++w) {
    if (faulty && !faults.Alive(w)) continue;
    tensor::Axpy(1.0f / static_cast<float>(survivors), models[w], consensus);
  }

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = gradients.load();
  result.live_workers = faults.LiveCount();
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].wait = wait_comm[w].wait;
    result.breakdown[w].comm = wait_comm[w].comm;
  }
  result.final_params = consensus;
  const nn::BatchResult final_eval = monitor.FullEval(consensus);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), consensus, train_data, 2048).loss;
  return result;
}

}  // namespace rna::baselines
