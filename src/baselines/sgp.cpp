#include <atomic>
#include <cmath>
#include <thread>

#include "rna/baselines/baselines.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/trace.hpp"
#include "rna/train/fault.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::baselines {

using namespace rna::train;

namespace {

constexpr int kTagPush = 450;  // PushSum (x/2, w/2) message (+ parity)

/// Time-varying one-out-degree exponential graph: at iteration t, node r
/// sends to (r + 2^{t mod (⌊log2(P−1)⌋+1)}) mod P — a permutation at every
/// step, so each node also receives exactly one push per iteration, and an
/// update propagates to all P nodes in O(log P) steps.
std::size_t OutNeighbor(std::size_t rank, std::size_t iteration,
                        std::size_t world) {
  std::size_t log_p = 0;
  while ((std::size_t{1} << (log_p + 1)) < world) ++log_p;
  std::size_t hop = std::size_t{1} << (iteration % (log_p + 1));
  hop %= world;
  if (hop == 0) hop = 1;
  return (rank + hop) % world;
}

}  // namespace

TrainResult RunSgp(const TrainerConfig& config, const ModelFactory& factory,
                   const data::Dataset& train_data,
                   const data::Dataset& val_data) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 2, "SGP needs at least two workers");
  net::Fabric fabric(world);

  // Like Horovod, SGP's fixed one-push-one-receive schedule cannot lose a
  // member (Validate rejects crash and drop faults); hang/flaky/delay
  // faults just stall the hop graph.
  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const bool faulty = config.fault.Enabled();
  const bool lockstep = config.lockstep;

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  ParamBoard board(init);
  std::atomic<bool> stop{false};
  std::atomic<bool> draining{false};  // a worker has left the lockstep
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> gradients{0};

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> wait_comm(world);
  std::vector<std::vector<float>> final_debiased(world);
  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  std::vector<std::thread> threads;
  threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "gossip"));
      // PushSum state: biased model x and weight ω; the de-biased model is
      // z = x/ω. Iterations are lock-step: exactly one send and one receive
      // per step (the hop graph is a permutation). Unlike the collective
      // protocols there is no global view, so shutdown is handled by timed
      // receives: once `stop` (or `draining`) is raised, a worker blocked
      // on a push that will never come exits cleanly.
      std::vector<float> x = init;
      double omega = 1.0;
      std::vector<float> z(dim);
      std::vector<float> grad(dim);
      const auto lr = static_cast<float>(config.sgd.learning_rate);

      for (std::size_t iter = 0; iter < config.max_rounds; ++iter) {
        // Under lockstep `draining` must not clip the loop: the first worker
        // to finish its max_rounds iterations would race slower workers out
        // of their final gradient, making gradients_applied (and the x of
        // the clipped worker's out-neighbor) schedule-dependent. With every
        // worker running the full count, the per-iteration permutation
        // matches every push to exactly one receive, so nobody blocks.
        // The receive poll below still honors draining, which is what
        // unblocks workers when `stop` cuts a run short mid-wave.
        if (stop.load() || (!lockstep && draining.load())) break;

        // Gradient at the de-biased point, applied to the biased model
        // scaled by ω (so the de-biased step is plain SGD).
        if (faulty) {
          // Hang/flaky sleeps only; kCrash is unreachable here (Validate).
          (void)faults.BeforeIteration(w, workers[w]->Iterations());
        }
        const auto inv_omega = static_cast<float>(1.0 / omega);
        for (std::size_t i = 0; i < dim; ++i) z[i] = x[i] * inv_omega;
        workers[w]->ComputeGradient(z, grad);
        const auto scaled_lr = lr * static_cast<float>(omega);
        for (std::size_t i = 0; i < dim; ++i) x[i] -= scaled_lr * grad[i];
        gradients.fetch_add(1);

        // Push half of (x, ω) to the out-neighbor; keep the other half.
        const std::size_t peer = OutNeighbor(w, iter, world);
        // Parity tags pair a receive with *any* same-parity push in arrival
        // order (wall-clock dependent). Lockstep uses iteration-unique tags
        // so each receive pairs with exactly its in-neighbor's iteration-t
        // push — the schedule becomes a deterministic wave. SGP's fabric
        // carries only push traffic, so the open-ended tag range is safe.
        const int push_tag =
            lockstep ? kTagPush + static_cast<int>(iter)
                     : kTagPush + static_cast<int>(iter % 2);
        net::Message push;
        push.tag = push_tag;
        push.meta = {static_cast<std::int64_t>(iter)};
        push.data.resize(dim + 1);
        for (std::size_t i = 0; i < dim; ++i) {
          x[i] *= 0.5f;
          push.data[i] = x[i];
        }
        omega *= 0.5;
        push.data[dim] = static_cast<float>(omega);
        obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                    "push_recv", &wait_comm[w].comm);
        comm_timer.SetArg("iter", static_cast<double>(iter));
        fabric.Send(w, peer, std::move(push));

        std::optional<net::Message> in;
        for (;;) {
          in = fabric.RecvFor(w, push_tag, 0.005);
          if (in.has_value()) break;
          if (stop.load() || draining.load()) break;
        }
        comm_timer.Stop();
        if (!in.has_value()) break;  // shutting down mid-step
        RNA_CHECK(in->data.size() == dim + 1);
        for (std::size_t i = 0; i < dim; ++i) x[i] += in->data[i];
        omega += static_cast<double>(in->data[dim]);

        if (w == 0) {
          const auto inv = static_cast<float>(1.0 / omega);
          std::vector<float> debiased(dim);
          for (std::size_t i = 0; i < dim; ++i) debiased[i] = x[i] * inv;
          board.Publish(debiased, static_cast<std::int64_t>(iter) + 1);
          rounds_done.fetch_add(1);
        }
      }
      draining.store(true);  // release peers blocked on a push from us
      const auto inv = static_cast<float>(1.0 / omega);
      final_debiased[w].resize(dim);
      for (std::size_t i = 0; i < dim; ++i) final_debiased[w][i] = x[i] * inv;
    });
  }
  for (auto& t : threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = gradients.load();
  result.live_workers = faults.LiveCount();
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].comm = wait_comm[w].comm;
  }
  result.final_params = final_debiased[0];
  const nn::BatchResult final_eval = monitor.FullEval(final_debiased[0]);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), final_debiased[0], train_data, 2048)
          .loss;
  return result;
}

}  // namespace rna::baselines
