#include <atomic>
#include <thread>

#include "rna/baselines/baselines.hpp"
#include "rna/collectives/allreduce.hpp"
#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/trace.hpp"
#include "rna/train/fault.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::baselines {

using namespace rna::train;

// Horovod-style BSP: each round is
//   compute → negotiation barrier (all workers announce readiness)
//           → blocking ring allreduce → identical optimizer step.
// The stop decision must be collective (a worker leaving the ring alone
// would deadlock it), so each worker contributes a stop vote as one extra
// element of the allreduce payload; everyone observes the same vote sum and
// exits the same round.
TrainResult RunHorovod(const TrainerConfig& config, const ModelFactory& factory,
                       const data::Dataset& train_data,
                       const data::Dataset& val_data) {
  const std::size_t world = config.world;
  net::Fabric fabric(world);
  const collectives::Group group = collectives::Group::Full(world);

  // BSP cannot lose a member (Validate rejects crash and drop faults for
  // Horovod), but hang/flaky schedules and delay faults apply: a straggling
  // worker simply stalls the barrier, which is exactly the pathology the
  // paper measures against.
  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const bool faulty = config.fault.Enabled();
  // Under fault injection every collective wait is bounded; a worker whose
  // barrier or ring times out abandons the run (its peers' own deadlines
  // release them too). Without faults 0.0 = wait forever, but even that path
  // uses the For-variants, whose slack waits wake on fabric shutdown — no
  // untimed receive survives in this file.
  const common::Seconds hop_timeout =
      faulty ? config.fault.collective_timeout_s : 0.0;

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  ParamBoard board(init);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> gradients{0};

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> wait_comm(world);
  std::vector<std::vector<float>> final_params(world);
  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  std::vector<std::thread> threads;
  threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "sync"));
      std::vector<float> params = init;
      std::vector<float> buffer(dim + 1);  // gradient ‖ stop vote
      nn::SgdMomentum& optimizer = workers[w]->Optimizer();
      // Per-worker error-feedback residual for lossy compression. The stop
      // vote rides in the exact tail, so it is never quantized: the vote
      // sum stays bitwise-identical on every worker and the collective
      // exit stays unanimous.
      collectives::ErrorFeedback feedback;
      feedback.EnsureSize(dim + 1);
      collectives::CollectiveOptions opts;
      opts.schedule = config.schedule;
      opts.compression = config.compression;
      opts.topk_fraction = config.topk_fraction;
      opts.hop_timeout = hop_timeout;
      opts.feedback = &feedback;
      opts.exact_tail = 1;

      for (std::size_t round = 0; round < config.max_rounds; ++round) {
        for (std::size_t milestone : config.lr_decay_rounds) {
          if (milestone == round) {
            optimizer.DecayLearningRate(config.lr_decay_factor);
          }
        }
        if (faulty) {
          // Hang/flaky sleeps only; kCrash is unreachable here (Validate).
          (void)faults.BeforeIteration(w, workers[w]->Iterations());
        }
        workers[w]->ComputeGradient(params,
                                    std::span<float>(buffer.data(), dim));
        buffer[dim] = stop.load() ? 1.0f : 0.0f;

        // NEGOTIATE_ALLREDUCE: nobody enters the collective until every
        // worker has announced its tensors — the BSP barrier whose cost
        // Figure 1 decomposes.
        {
          obs::ScopedTimer wait_timer(track, obs::Category::kWait, "barrier",
                                      &wait_comm[w].wait);
          wait_timer.SetArg("round", static_cast<double>(round));
          // The whole-barrier deadline must cover world − 1 straggling
          // arrivals at the leader, not just one hop.
          const common::Seconds barrier_timeout =
              faulty ? hop_timeout * static_cast<double>(world) : 0.0;
          if (!collectives::BarrierFor(fabric, group, w,
                                       tags::BarrierTag(round),
                                       barrier_timeout)) {
            break;
          }
        }
        bool ring_ok;
        {
          obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                      "allreduce", &wait_comm[w].comm);
          comm_timer.SetArg("round", static_cast<double>(round));
          opts.tag_base = tags::RingTag(round);
          ring_ok = collectives::AllreduceFor({fabric, group, w}, opts, buffer);
        }
        if (!ring_ok) break;

        const float inv_world = 1.0f / static_cast<float>(world);
        common::simd::ScaleInto(std::span<float>(buffer.data(), dim),
                                inv_world);
        optimizer.Step(params, std::span<const float>(buffer.data(), dim));

        if (w == 0) {
          board.Publish(params, static_cast<std::int64_t>(round) + 1);
          rounds_done.fetch_add(1);
          gradients.fetch_add(world);
        }
        if (buffer[dim] > 0.5f) break;  // unanimous, collective exit
      }
      final_params[w] = std::move(params);
    });
  }
  for (auto& t : threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = gradients.load();
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.round_contributors.assign(result.rounds, world);  // BSP: everyone
  result.live_workers = faults.LiveCount();
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].wait = wait_comm[w].wait;
    result.breakdown[w].comm = wait_comm[w].comm;
  }
  result.final_params = final_params[0];
  const nn::BatchResult final_eval = monitor.FullEval(final_params[0]);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), final_params[0], train_data, 2048)
          .loss;
  return result;
}

}  // namespace rna::baselines
