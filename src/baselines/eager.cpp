#include "rna/baselines/baselines.hpp"
#include "rna/train/partial_engine.hpp"

namespace rna::baselines {

// eager-SGD (Li et al., PPoPP'20), majority variant: identical machinery to
// RNA (cross-iteration compute, partial ring allreduce with null gradients)
// but the collective fires once a majority of workers have a gradient
// buffered — no randomized initiator election. The paper implements only
// the majority flavour as its baseline (§7.3) because solo collectives hurt
// convergence; both are available here (solo via MakeSoloPolicy for
// ablations).
train::TrainResult RunEagerSgd(const train::TrainerConfig& config,
                               const train::ModelFactory& factory,
                               const data::Dataset& train_data,
                               const data::Dataset& val_data) {
  train::TrainerConfig eager = config;
  // eager-SGD semantics: a worker whose gradient is not ready re-sends its
  // previous (stale) gradient; the collective is a plain average over all N
  // with no re-weighting, and there is no cross-iteration accumulation —
  // only the newest gradient is kept.
  eager.contribution = train::ContributionMode::kStaleReuse;
  eager.combine = train::LocalCombine::kLatest;
  eager.lr_policy = train::LrScalePolicy::kConstant;
  return train::RunPartialCollective(eager, factory, train_data, val_data,
                                     [] { return train::MakeMajorityPolicy(); });
}

}  // namespace rna::baselines
