#include <atomic>
#include <thread>

#include "rna/baselines/baselines.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/ps/server.hpp"
#include "rna/train/fault.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/worker.hpp"

namespace rna::baselines {

using namespace rna::train;

// The centralized algorithm of §2.2 in its asynchronous form (Downpour-
// style): every worker loops { pull model → compute gradient → push an SGD
// delta }, the server folds deltas in arrival order. There is no barrier,
// so stragglers never block anyone — but all N workers funnel through one
// server endpoint, the communication hotspot that motivates decentralized
// training in the first place.
TrainResult RunCentralizedPs(const TrainerConfig& config,
                             const ModelFactory& factory,
                             const data::Dataset& train_data,
                             const data::Dataset& val_data) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 1, "need at least one worker");
  const net::Rank server_rank = world;
  net::Fabric fabric(world + 1);

  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const bool faulty = config.fault.Enabled();
  const bool lockstep = config.lockstep;
  // Lockstep serializes the whole iterate (compute + PushPull) into rank
  // order, so deltas reach the server in a replayable sequence.
  RoundRobinGate gate(world);

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  ps::ParameterServer server(fabric, server_rank, init);
  server.Start();

  ParamBoard board(init);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> gradients{0};

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> wait_comm(world);
  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  std::vector<std::thread> threads;
  threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "ps"));
      ps::PsClient client(fabric, w, server_rank);
      if (faulty) {
        client.ConfigureRetry(config.fault.retry_budget,
                              config.fault.retry_timeout_s);
      }
      std::vector<float> params = init;
      std::vector<float> grad(dim);
      std::vector<float> delta(dim);
      const auto lr = static_cast<float>(config.sgd.learning_rate);

      for (std::size_t iter = 0; iter < config.max_rounds && !stop.load();
           ++iter) {
        if (lockstep && !gate.AcquireTurn(w)) break;
        if (faulty && faults.BeforeIteration(w, workers[w]->Iterations()) ==
                          IterationFate::kCrash) {
          faults.Kill(w);
          obs::CountMetric("fault.worker.goodbyes");
          break;  // gate.Retire below releases the rotation
        }
        workers[w]->ComputeGradient(params, grad);
        // Push the SGD delta and pull the freshest model in one round trip
        // (the PS applies requests atomically in arrival order).
        const auto scale = lr / static_cast<float>(world);
        for (std::size_t i = 0; i < dim; ++i) delta[i] = -scale * grad[i];
        obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                    "push_pull", &wait_comm[w].comm);
        comm_timer.SetArg("iter", static_cast<double>(iter));
        if (faulty) {
          // At-least-once with bounded retry; a slow (not dropped) request
          // can double-apply its delta — accepted as gradient noise on a
          // lossy fabric (see PsClient). An exhausted budget skips the
          // iterate's sync: the worker keeps its stale model and moves on.
          if (auto pulled =
                  client.TryPushPull(delta, ps::ApplyMode::kAddDelta)) {
            params = std::move(*pulled);
          } else {
            obs::CountMetric("fault.ps_sync_skipped");
          }
        } else {
          params = client.PushPull(delta, ps::ApplyMode::kAddDelta);
        }
        comm_timer.Stop();
        gradients.fetch_add(1);
        if (w == 0) {
          board.Publish(params, static_cast<std::int64_t>(iter) + 1);
          rounds_done.fetch_add(1);
        }
        if (lockstep) gate.ReleaseTurn(w);
      }
      // Retire also releases a turn still held after a break.
      if (lockstep) gate.Retire(w);
    });
  }
  for (auto& t : threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();

  const std::vector<float> final_params = server.Snapshot();
  server.Stop();

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = gradients.load();
  result.live_workers = faults.LiveCount();
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].comm = wait_comm[w].comm;
  }
  result.final_params = final_params;
  const nn::BatchResult final_eval = monitor.FullEval(final_params);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), final_params, train_data, 2048).loss;
  return result;
}

}  // namespace rna::baselines
