#include <atomic>
#include <thread>

#include "rna/baselines/baselines.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/ps/server.hpp"
#include "rna/ps/sharded.hpp"
#include "rna/train/fault.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/worker.hpp"

namespace rna::baselines {

using namespace rna::train;

// The centralized algorithm of §2.2 in its asynchronous form (Downpour-
// style): every worker loops { pull model → compute gradient → push an SGD
// delta }, the server folds deltas in arrival order. There is no barrier,
// so stragglers never block anyone — but all N workers funnel through one
// server endpoint, the communication hotspot that motivates decentralized
// training in the first place.
TrainResult RunCentralizedPs(const TrainerConfig& config,
                             const ModelFactory& factory,
                             const data::Dataset& train_data,
                             const data::Dataset& val_data) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 1, "need at least one worker");

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  // The model is range-sharded over ps_shards independent server
  // endpoints [world, world + shards); workers stripe their push/pulls
  // (ShardedPsClient), which splits the single-endpoint hotspot.
  const std::size_t shards =
      std::min(std::max<std::size_t>(1, config.ps_shards), dim);
  const net::Rank first_server = world;
  net::Fabric fabric(world + shards);

  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const bool faulty = config.fault.Enabled();
  const bool lockstep = config.lockstep;
  // Lockstep serializes the whole iterate (compute + PushPull) into rank
  // order, so deltas reach the server in a replayable sequence.
  RoundRobinGate gate(world);

  std::vector<std::unique_ptr<ps::ParameterServer>> servers;
  servers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const auto begin = static_cast<std::ptrdiff_t>(
        ps::ShardFirst(dim, shards, s));
    const auto end = static_cast<std::ptrdiff_t>(
        ps::ShardLast(dim, shards, s));
    std::vector<float> slice(init.begin() + begin, init.begin() + end);
    servers.push_back(std::make_unique<ps::ParameterServer>(
        fabric, first_server + s, std::move(slice)));
    servers.back()->Start();
  }

  ParamBoard board(init);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> gradients{0};
  std::atomic<std::size_t> workers_joined{0};
  std::atomic<std::size_t> workers_left{0};

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> wait_comm(world);
  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  std::vector<std::thread> threads;
  threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "ps"));
      ps::ShardedPsClient client(fabric, w, first_server, shards, dim);
      if (faulty) {
        client.ConfigureRetry(config.fault.retry_budget,
                              config.fault.retry_timeout_s);
      }
      std::vector<float> params = init;
      std::vector<float> grad(dim);
      std::vector<float> delta(dim);
      const auto lr = static_cast<float>(config.sgd.learning_rate);
      // Elastic schedule (lockstep-only, per Validate): a pending rank
      // passes its gate turns without computing, pulls the current model
      // at its join iteration, and a leaver retires cleanly at its leave
      // iteration — the rotation stays deterministic throughout.
      std::size_t join_at = 0;
      std::size_t leave_at = ElasticSchedule::kNever;
      for (const ElasticSchedule& e : config.elastic) {
        if (e.rank == w) {
          join_at = e.join_at_round;
          leave_at = e.leave_at_round;
        }
      }
      bool joined = join_at == 0;

      for (std::size_t iter = 0; iter < config.max_rounds && !stop.load();
           ++iter) {
        if (lockstep && !gate.AcquireTurn(w)) break;
        if (iter >= leave_at) {
          obs::CountMetric("elastic.leaves");
          workers_left.fetch_add(1);
          if (lockstep) gate.ReleaseTurn(w);
          break;  // gate.Retire below removes w from the rotation
        }
        if (!joined) {
          if (iter < join_at) {
            if (lockstep) gate.ReleaseTurn(w);
            continue;  // pending: pass the turn, keep the rotation intact
          }
          // Join: adopt the server's current model before contributing.
          bool pulled_ok = true;
          if (faulty) {
            if (auto pulled = client.TryPull()) {
              params = std::move(*pulled);
            } else {
              pulled_ok = false;  // budget exhausted: retry next turn
              obs::CountMetric("fault.ps_sync_skipped");
            }
          } else {
            params = client.Pull();
          }
          if (pulled_ok) {
            joined = true;
            obs::CountMetric("elastic.joins");
            workers_joined.fetch_add(1);
          }
          if (lockstep) gate.ReleaseTurn(w);
          continue;  // first gradient computes against the joined model
        }
        if (faulty && faults.BeforeIteration(w, workers[w]->Iterations()) ==
                          IterationFate::kCrash) {
          faults.Kill(w);
          obs::CountMetric("fault.worker.goodbyes");
          break;  // gate.Retire below releases the rotation
        }
        workers[w]->ComputeGradient(params, grad);
        // Push the SGD delta and pull the freshest model in one round trip
        // (the PS applies requests atomically in arrival order).
        const auto scale = lr / static_cast<float>(world);
        for (std::size_t i = 0; i < dim; ++i) delta[i] = -scale * grad[i];
        obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                    "push_pull", &wait_comm[w].comm);
        comm_timer.SetArg("iter", static_cast<double>(iter));
        if (faulty) {
          // At-least-once with bounded retry; a slow (not dropped) request
          // can double-apply its delta — accepted as gradient noise on a
          // lossy fabric (see PsClient). An exhausted budget skips the
          // iterate's sync: the worker keeps its stale model and moves on.
          if (auto pulled =
                  client.TryPushPull(delta, ps::ApplyMode::kAddDelta)) {
            params = std::move(*pulled);
          } else {
            obs::CountMetric("fault.ps_sync_skipped");
          }
        } else {
          params = client.PushPull(delta, ps::ApplyMode::kAddDelta);
        }
        comm_timer.Stop();
        gradients.fetch_add(1);
        if (w == 0) {
          board.Publish(params, static_cast<std::int64_t>(iter) + 1);
          rounds_done.fetch_add(1);
        }
        if (lockstep) gate.ReleaseTurn(w);
      }
      // Retire also releases a turn still held after a break.
      if (lockstep) gate.Retire(w);
    });
  }
  for (auto& t : threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();

  std::vector<float> final_params;
  final_params.reserve(dim);
  for (auto& server : servers) {
    const std::vector<float> shard = server->Snapshot();
    final_params.insert(final_params.end(), shard.begin(), shard.end());
    server->Stop();
  }

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = gradients.load();
  result.live_workers = faults.LiveCount();
  result.workers_joined = workers_joined.load();
  result.workers_left = workers_left.load();
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].comm = wait_comm[w].comm;
  }
  result.final_params = final_params;
  const nn::BatchResult final_eval = monitor.FullEval(final_params);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), final_params, train_data, 2048).loss;
  return result;
}

}  // namespace rna::baselines
