#include "rna/common/log.hpp"

#include <atomic>
#include <iostream>

#include "rna/common/mutex.hpp"

namespace rna::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes whole lines onto std::cerr so concurrent loggers never
// interleave mid-line. The stream itself is the guarded resource.
Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_log_mutex);
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace rna::common
