#pragma once

// A tiny command-line flag parser for the example binaries:
// --name=value or --name value; --flag alone is boolean true.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rna::common {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& name, std::int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& Positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rna::common
