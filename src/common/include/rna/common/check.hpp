#pragma once

// Precondition/invariant checking. Violations are programming errors, so
// they throw std::logic_error with location information; callers are not
// expected to recover beyond tearing down the experiment.

#include <stdexcept>
#include <string>

namespace rna::common {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& message) {
  throw std::logic_error(std::string("check failed: ") + expr + " at " + file +
                         ":" + std::to_string(line) +
                         (message.empty() ? "" : " — " + message));
}

}  // namespace rna::common

#define RNA_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::rna::common::CheckFailed(#expr, __FILE__, __LINE__, "");     \
    }                                                                \
  } while (false)

#define RNA_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::rna::common::CheckFailed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (false)
