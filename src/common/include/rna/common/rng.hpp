#pragma once

// Deterministic, cross-platform random number generation.
//
// The standard <random> distributions are implementation-defined, which makes
// tests and experiment tables non-reproducible across standard libraries.
// This header provides a fixed algorithm for both the engine (xoshiro256**)
// and every distribution the project uses, so a fixed seed yields the same
// stream everywhere.

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace rna::common {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality 64-bit engine.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire-style rejection
  /// to avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t n) {
    // Multiply-shift with rejection.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box-Muller (the second deviate is cached).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = Uniform();
    while (u1 <= 0.0) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Exponential with the given rate (inverse of the mean).
  double Exponential(double rate) {
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return -std::log(u) / rate;
  }

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = UniformInt(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in selection order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

inline std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                              std::size_t k) {
  // Partial Fisher-Yates over an index vector; O(n) setup, fine for the
  // cluster sizes used here (<= a few hundred nodes).
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k && i < n; ++i) {
    const std::size_t j = i + UniformInt(n - i);
    using std::swap;
    swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

}  // namespace rna::common
