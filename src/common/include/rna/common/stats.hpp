#pragma once

// Lightweight statistics helpers used by benchmarks and workload analysis:
// online mean/variance (Welford), percentile summaries and fixed-bin
// histograms matching the box-plot statistics reported in the paper
// (Figure 10 whiskers: p5/p95, box: p25/median/p75).

#include <cstddef>
#include <string>
#include <vector>

namespace rna::common {

/// Numerically stable online mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);

  std::size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double Variance() const;
  double Stddev() const;
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }
  double Sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-plus summary of a sample set.
struct PercentileSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p5 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Linear-interpolated percentile of a sample vector; q in [0, 100].
/// The input is copied and sorted. Returns 0 for an empty sample.
double Percentile(std::vector<double> samples, double q);

/// Computes the full summary in one sort.
PercentileSummary Summarize(std::vector<double> samples);

/// Fixed-width-bin histogram over [lo, hi); values outside are clamped to
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  std::size_t BinCount() const { return counts_.size(); }
  std::size_t Count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t Total() const { return total_; }
  double BinLo(std::size_t bin) const;
  double BinHi(std::size_t bin) const;

  /// ASCII rendering for bench output, one line per bin.
  std::string Render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rna::common
