#pragma once

// A blocking multi-producer/multi-consumer queue with close semantics,
// used as the mailbox primitive of the in-process network fabric and as the
// hand-off channel between each worker's compute and communication threads.

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "rna/common/clock.hpp"
#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"

namespace rna::common {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Pushes an item. Returns false (dropping the item) if the queue is
  /// closed.
  bool Push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.Wait(mu_);
    return PopLocked();
  }

  /// Like Pop but gives up after the timeout. Returns std::nullopt on
  /// timeout and when the queue is (or becomes) closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = SteadyClock::now() + timeout;
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
    return PopLocked();  // nullopt if still empty after timeout/close
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: pending items can still be popped, further pushes are
  /// rejected, and blocked consumers wake up.
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  bool Closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t Size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  bool Empty() const {
    MutexLock lock(mu_);
    return items_.empty();
  }

 private:
  std::optional<T> PopLocked() RNA_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ RNA_GUARDED_BY(mu_);
  bool closed_ RNA_GUARDED_BY(mu_) = false;
};

}  // namespace rna::common
