#pragma once

// A blocking multi-producer/multi-consumer queue with close semantics,
// used as the mailbox primitive of the in-process network fabric and as the
// hand-off channel between each worker's compute and communication threads.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace rna::common {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Pushes an item. Returns false (dropping the item) if the queue is
  /// closed.
  bool Push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    return PopLocked();
  }

  /// Like Pop but gives up after the timeout.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    return PopLocked();
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue: pending items can still be popped, further pushes are
  /// rejected, and blocked consumers wake up.
  void Close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool Closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t Size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool Empty() const { return Size() == 0; }

 private:
  std::optional<T> PopLocked() {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rna::common
