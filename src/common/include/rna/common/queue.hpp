#pragma once

// A blocking multi-producer/multi-consumer queue with close semantics,
// used as the mailbox primitive of the in-process network fabric and as the
// hand-off channel between each worker's compute and communication threads.

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "rna/common/clock.hpp"
#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"

namespace rna::common {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;

  /// Bounded variant: Push blocks while the queue holds `capacity` items
  /// (until a consumer pops or the queue is closed). capacity == 0 keeps
  /// the unbounded behavior. The data plane's prefetch pipelines use this
  /// as their back-pressure: a producer thread runs at most `capacity`
  /// items ahead of its consumer.
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Pushes an item, blocking while a bounded queue is full. Returns false
  /// (dropping the item) if the queue is (or becomes) closed.
  bool Push(T item) {
    {
      MutexLock lock(mu_);
      while (capacity_ > 0 && items_.size() >= capacity_ && !closed_) {
        not_full_.Wait(mu_);
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Non-blocking push. Returns false without enqueueing when the queue is
  /// closed or a bounded queue is full.
  bool TryPush(T item) {
    {
      MutexLock lock(mu_);
      if (closed_ || (capacity_ > 0 && items_.size() >= capacity_)) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (items_.empty() && !closed_) cv_.Wait(mu_);
      item = PopLocked();
    }
    if (item.has_value()) not_full_.NotifyOne();
    return item;
  }

  /// Like Pop but gives up after the timeout. Returns std::nullopt on
  /// timeout and when the queue is (or becomes) closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = SteadyClock::now() + timeout;
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      while (items_.empty() && !closed_) {
        if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
      }
      item = PopLocked();  // nullopt if still empty after timeout/close
    }
    if (item.has_value()) not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::optional<T> item;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Closes the queue: pending items can still be popped, further pushes are
  /// rejected, and blocked producers and consumers wake up.
  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool Closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t Size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  bool Empty() const {
    MutexLock lock(mu_);
    return items_.empty();
  }

 private:
  std::optional<T> PopLocked() RNA_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable Mutex mu_;
  CondVar cv_;        // signaled on push/close: items may be available
  CondVar not_full_;  // signaled on pop/close: bounded producers may proceed
  const std::size_t capacity_ = 0;  // 0 = unbounded
  std::deque<T> items_ RNA_GUARDED_BY(mu_);
  bool closed_ RNA_GUARDED_BY(mu_) = false;
};

}  // namespace rna::common
