#pragma once

// The project's lock vocabulary: a Mutex/MutexLock/CondVar trio that wraps
// the standard primitives with Clang capability annotations
// (thread_annotations.hpp). Raw std::mutex is invisible to -Wthread-safety
// — the analysis needs RNA_CAPABILITY on the lock type — so all library
// code locks through these types; tools/lint.py bans std::mutex /
// std::condition_variable outside this header.
//
// Condition waits deliberately have no predicate overloads: a predicate
// lambda is analyzed as a separate unannotated function and would trip
// -Wthread-safety on every guarded member it touches. Callers write the
// standard `while (!condition) cv.Wait(mu);` loop instead, which keeps the
// guarded reads inside the annotated function and handles spurious wakeups
// identically.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "rna/common/thread_annotations.hpp"

namespace rna::common {

class RNA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RNA_ACQUIRE() { mu_.lock(); }
  void Unlock() RNA_RELEASE() { mu_.unlock(); }
  bool TryLock() RNA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, so std::condition_variable_any (inside CondVar)
  // can unlock/relock around its waits.
  void lock() RNA_ACQUIRE() { mu_.lock(); }
  void unlock() RNA_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII holder. Supports hand-over-hand sections via Unlock()/Lock(), e.g.
/// dropping the lock to call out while iterating a guarded structure.
class RNA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RNA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RNA_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RNA_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() RNA_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to Mutex. All waits require the mutex held and
/// hold it again on return (including timeouts and spurious wakeups).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(Mutex& mu) RNA_REQUIRES(mu) { cv_.wait(mu); }

  /// Returns std::cv_status::timeout once `deadline` has passed; callers
  /// re-check their condition either way.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::time_point<Clock, Duration> deadline)
      RNA_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         std::chrono::duration<Rep, Period> timeout)
      RNA_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rna::common
