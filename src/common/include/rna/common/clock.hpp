#pragma once

// Time helpers. Real time is always measured with steady_clock; simulated
// time lives in rna::sim. Durations inside the project are expressed as
// double seconds to keep arithmetic with workload models simple.

#include <chrono>
#include <ctime>
#include <thread>

namespace rna::common {

using SteadyClock = std::chrono::steady_clock;

/// Seconds as a double; the unit used throughout the simulator and the
/// workload models.
using Seconds = double;

inline Seconds ToSeconds(SteadyClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

inline SteadyClock::duration FromSeconds(Seconds s) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(s));
}

/// The project's sanctioned blocking sleep, used only to model real time
/// passing (straggler injection in WorkerContext). Library code must not
/// sleep for synchronization — wait on a CondVar instead so shutdown can
/// interrupt the wait; tools/lint.py bans std::this_thread::sleep_for
/// outside this header and tests.
inline void SleepFor(Seconds s) {
  if (s > 0.0) std::this_thread::sleep_for(FromSeconds(s));
}

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// For busy-time accounting that must mean "work done": a thread that is
/// descheduled accrues no CPU time, so the figure stays comparable when
/// hundreds of threads oversubscribe the cores (where wall-clock sections
/// would mostly measure preemption).
inline Seconds ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<Seconds>(ts.tv_sec) +
         1e-9 * static_cast<Seconds>(ts.tv_nsec);
#else
  return ToSeconds(SteadyClock::now().time_since_epoch());
#endif
}

/// RAII delta of ThreadCpuSeconds() added to `*acc` on destruction.
class ScopedCpuAccumulator {
 public:
  explicit ScopedCpuAccumulator(Seconds* acc)
      : acc_(acc), start_(ThreadCpuSeconds()) {}
  ScopedCpuAccumulator(const ScopedCpuAccumulator&) = delete;
  ScopedCpuAccumulator& operator=(const ScopedCpuAccumulator&) = delete;
  ~ScopedCpuAccumulator() { *acc_ += ThreadCpuSeconds() - start_; }

 private:
  Seconds* acc_;
  Seconds start_;
};

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyClock::now()) {}

  void Reset() { start_ = SteadyClock::now(); }

  Seconds Elapsed() const { return ToSeconds(SteadyClock::now() - start_); }

 private:
  SteadyClock::time_point start_;
};

}  // namespace rna::common
