#pragma once

// Time helpers. Real time is always measured with steady_clock; simulated
// time lives in rna::sim. Durations inside the project are expressed as
// double seconds to keep arithmetic with workload models simple.

#include <chrono>
#include <thread>

namespace rna::common {

using SteadyClock = std::chrono::steady_clock;

/// Seconds as a double; the unit used throughout the simulator and the
/// workload models.
using Seconds = double;

inline Seconds ToSeconds(SteadyClock::duration d) {
  return std::chrono::duration<double>(d).count();
}

inline SteadyClock::duration FromSeconds(Seconds s) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(s));
}

/// The project's sanctioned blocking sleep, used only to model real time
/// passing (straggler injection in WorkerContext). Library code must not
/// sleep for synchronization — wait on a CondVar instead so shutdown can
/// interrupt the wait; tools/lint.py bans std::this_thread::sleep_for
/// outside this header and tests.
inline void SleepFor(Seconds s) {
  if (s > 0.0) std::this_thread::sleep_for(FromSeconds(s));
}

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyClock::now()) {}

  void Reset() { start_ = SteadyClock::now(); }

  Seconds Elapsed() const { return ToSeconds(SteadyClock::now() - start_); }

 private:
  SteadyClock::time_point start_;
};

}  // namespace rna::common
