#pragma once

// Clang thread-safety (capability) analysis macros, in the style of
// abseil's thread_annotations.h. Under Clang with -Wthread-safety these
// expand to attributes that let the compiler prove, at compile time, that
// every access to a RNA_GUARDED_BY member happens with the right lock held;
// under other compilers they expand to nothing.
//
// The analysis only understands annotated lock types, so the project pairs
// these macros with rna::common::Mutex / MutexLock / CondVar (mutex.hpp)
// instead of raw std::mutex — tools/lint.py enforces that pairing.
//
// Annotation cheat-sheet:
//   RNA_CAPABILITY("mutex")   — marks a class as a lockable capability
//   RNA_SCOPED_CAPABILITY     — marks an RAII lock holder
//   RNA_GUARDED_BY(mu)        — data member readable/writable only under mu
//   RNA_PT_GUARDED_BY(mu)     — pointee guarded by mu (pointer itself free)
//   RNA_REQUIRES(mu)          — caller must hold mu
//   RNA_ACQUIRE(mu) / RNA_RELEASE(mu) — function takes / drops mu
//   RNA_TRY_ACQUIRE(ok, mu)   — conditional acquisition, `ok` on success
//   RNA_EXCLUDES(mu)          — caller must NOT hold mu (anti-deadlock)
//   RNA_ASSERT_CAPABILITY(mu) — runtime-checked "mu is held here"
//   RNA_RETURN_CAPABILITY(mu) — accessor returning a reference to mu
//   RNA_NO_THREAD_SAFETY_ANALYSIS — opt a definition out of the analysis

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define RNA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef RNA_THREAD_ANNOTATION_ATTRIBUTE
#define RNA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define RNA_CAPABILITY(x) RNA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define RNA_SCOPED_CAPABILITY RNA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define RNA_GUARDED_BY(x) RNA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define RNA_PT_GUARDED_BY(x) RNA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define RNA_ACQUIRED_BEFORE(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define RNA_ACQUIRED_AFTER(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define RNA_REQUIRES(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define RNA_REQUIRES_SHARED(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define RNA_ACQUIRE(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define RNA_ACQUIRE_SHARED(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RNA_RELEASE(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RNA_RELEASE_SHARED(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define RNA_TRY_ACQUIRE(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define RNA_EXCLUDES(...) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define RNA_ASSERT_CAPABILITY(x) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define RNA_RETURN_CAPABILITY(x) \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define RNA_NO_THREAD_SAFETY_ANALYSIS \
  RNA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
