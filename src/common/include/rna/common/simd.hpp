#pragma once

// Vectorized kernels shared by the collective/fabric data plane and the
// compute plane. The elementwise family (AddInto/ScaleInto/…) covers the
// ring reduce-scatter's chunk accumulate, the W = 1/Σw re-weighting of the
// partial allreduce, and the staleness-weighted gradient combine. Every
// elementwise kernel has no cross-lane reduction, so the wide path is
// bitwise identical to the scalar reference — tests/test_dataplane.cpp
// cross-checks this per kernel and end-to-end through the collectives.
//
// The matmul family (MatMulNN/NT/TN, implemented in simd.cpp) extends the
// same contract to the compute plane: each variant has a scalar reference
// and a cache-blocked vectorized path whose per-element accumulation order
// is *identical* to the reference, so vectorized and scalar dispatch are
// bitwise equal (tests/test_tensor.cpp sweeps awkward shapes to pin this):
//   * NN and TN accumulate each C element over ascending k with one add per
//     k and skip alpha·a == 0 contributions in both paths — blocking only
//     reorders whole (i, k) row passes, never the per-element k order.
//   * NT splits the k reduction into 8 independent lanes combined by a
//     fixed pairwise tree; the scalar reference simulates the same lanes.
//
// The wide path uses GCC/Clang vector extensions (8 × f32, compiled to
// AVX/NEON/whatever the target offers) with memcpy-based unaligned
// load/store, so it needs no intrinsics header and works on any target the
// repo builds on. `SetDispatch(Dispatch::kScalar)` forces the scalar
// reference at runtime — the hook the equivalence suite and the kernel
// microbench both use.

#include <atomic>
#include <cstddef>
#include <cstring>
#include <span>

namespace rna::common::simd {

enum class Dispatch {
  kAuto,    ///< wide path (default)
  kScalar,  ///< force the scalar reference (tests, microbench baselines)
};

/// Process-global dispatch switch; kAuto unless a test/bench overrides it.
void SetDispatch(Dispatch d);
Dispatch ActiveDispatch();

namespace scalar {

/// dst[i] += src[i]
inline void AddInto(std::span<float> dst, std::span<const float> src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

/// dst[i] *= s
inline void ScaleInto(std::span<float> dst, float s) {
  for (float& x : dst) x *= s;
}

/// dst[i] += w * src[i]
inline void WeightedAccumulate(std::span<float> dst,
                               std::span<const float> src, float w) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += w * src[i];
}

/// dst[i] = s * src[i]
inline void ScaledCopy(std::span<float> dst, std::span<const float> src,
                       float s) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = s * src[i];
}

/// dst[i] = 0.5 * (dst[i] + src[i]) — the PS kAverage fold. Add-then-halve
/// order is part of the contract (multiplying by 0.5 is exact, so this is
/// the correctly-rounded midpoint except at the subnormal edge).
inline void AverageInto(std::span<float> dst, std::span<const float> src) {
  for (std::size_t i = 0; i < dst.size(); ++i)
    dst[i] = 0.5f * (dst[i] + src[i]);
}

}  // namespace scalar

namespace detail {

#if defined(__GNUC__) || defined(__clang__)
#define RNA_SIMD_VECTOR_EXT 1
using V8f = float __attribute__((vector_size(32)));
constexpr std::size_t kLanes = 8;

inline V8f Load(const float* p) {
  V8f v;
  std::memcpy(&v, p, sizeof(V8f));
  return v;
}

inline void Store(float* p, V8f v) { std::memcpy(p, &v, sizeof(V8f)); }
#else
#define RNA_SIMD_VECTOR_EXT 0
#endif

#if RNA_SIMD_VECTOR_EXT
inline void AddInto(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Store(dst + i, Load(dst + i) + Load(src + i));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

inline void ScaleInto(float* dst, float s, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Store(dst + i, Load(dst + i) * s);
  }
  for (; i < n; ++i) dst[i] *= s;
}

inline void WeightedAccumulate(float* dst, const float* src, float w,
                               std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Store(dst + i, Load(dst + i) + Load(src + i) * w);
  }
  for (; i < n; ++i) dst[i] += w * src[i];
}

inline void ScaledCopy(float* dst, const float* src, float s, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Store(dst + i, Load(src + i) * s);
  }
  for (; i < n; ++i) dst[i] = s * src[i];
}

inline void AverageInto(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    Store(dst + i, (Load(dst + i) + Load(src + i)) * 0.5f);
  }
  for (; i < n; ++i) dst[i] = 0.5f * (dst[i] + src[i]);
}
#endif  // RNA_SIMD_VECTOR_EXT

}  // namespace detail

/// dst[i] += src[i]; spans must be equal-sized (size checked by caller).
inline void AddInto(std::span<float> dst, std::span<const float> src) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    detail::AddInto(dst.data(), src.data(), dst.size());
    return;
  }
#endif
  scalar::AddInto(dst, src);
}

/// dst[i] *= s
inline void ScaleInto(std::span<float> dst, float s) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    detail::ScaleInto(dst.data(), s, dst.size());
    return;
  }
#endif
  scalar::ScaleInto(dst, s);
}

/// dst[i] += w * src[i]
inline void WeightedAccumulate(std::span<float> dst,
                               std::span<const float> src, float w) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    detail::WeightedAccumulate(dst.data(), src.data(), w, dst.size());
    return;
  }
#endif
  scalar::WeightedAccumulate(dst, src, w);
}

/// dst[i] = s * src[i]
inline void ScaledCopy(std::span<float> dst, std::span<const float> src,
                       float s) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    detail::ScaledCopy(dst.data(), src.data(), s, dst.size());
    return;
  }
#endif
  scalar::ScaledCopy(dst, src, s);
}

/// dst[i] = 0.5 * (dst[i] + src[i])
inline void AverageInto(std::span<float> dst, std::span<const float> src) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    detail::AverageInto(dst.data(), src.data(), dst.size());
    return;
  }
#endif
  scalar::AverageInto(dst, src);
}

// ---- dense matmul kernels (row-major, dispatching like the above) ----
//
// Shapes are caller-checked; these operate on raw pointers so both the
// tensor ops layer and the LSTM's strided row updates can use them.

/// C(m×n) = alpha · A(m×k) · B(k×n) + beta · C.
void MatMulNN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta);

/// C(m×n) = alpha · A(m×k) · Bᵀ + beta · C, with B stored n×k.
void MatMulNT(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta);

/// C(m×n) = alpha · Aᵀ · B + beta · C, with A stored k×m and B stored k×n.
void MatMulTN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta);

namespace scalar {

/// Scalar references with the dispatch-independent accumulation orders
/// documented above; the microbench baselines and equivalence tests call
/// these directly.
void MatMulNN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta);
void MatMulNT(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta);
void MatMulTN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta);

}  // namespace scalar

}  // namespace rna::common::simd
