#pragma once

// Minimal leveled, thread-safe logger. Benchmarks print their tables on
// stdout directly; the logger is for diagnostics on stderr and is silent at
// the default level so tests stay quiet.

#include <sstream>
#include <string>

namespace rna::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one line to stderr under a global mutex.
void LogMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine Debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine Info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine Warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine Error() { return detail::LogLine(LogLevel::kError); }

}  // namespace rna::common
