#include "rna/common/simd.hpp"

namespace rna::common::simd {

namespace {

std::atomic<Dispatch> g_dispatch{Dispatch::kAuto};

}  // namespace

void SetDispatch(Dispatch d) {
  g_dispatch.store(d, std::memory_order_relaxed);
}

Dispatch ActiveDispatch() {
  return g_dispatch.load(std::memory_order_relaxed);
}

}  // namespace rna::common::simd
