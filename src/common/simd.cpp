#include "rna/common/simd.hpp"

#include <algorithm>

namespace rna::common::simd {

namespace {

std::atomic<Dispatch> g_dispatch{Dispatch::kAuto};

// Shared by both dispatch paths so the beta handling is bitwise identical.
inline void ApplyBeta(float* c, std::size_t elems, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + elems, 0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < elems; ++i) c[i] *= beta;
  }
}

// Fixed pairwise reduction of the NT kernel's 8 partial sums. Both the
// scalar reference and the wide path reduce through this exact tree.
inline float ReduceLanes(const float* lanes) {
  return ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) +
         ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
}

// Cache-blocking tile sizes for the wide kernels: a kBlockK × kBlockN tile
// of B (32 KiB) stays L1-resident while it is streamed against rows of A.
constexpr std::size_t kBlockK = 64;
constexpr std::size_t kBlockN = 128;

#if RNA_SIMD_VECTOR_EXT

using detail::kLanes;
using detail::Load;
using detail::Store;
using detail::V8f;

// C += av · brow over [0, n) — the j-inner body of the NN/TN kernels.
inline void AccumulateRow(float* crow, const float* brow, float av,
                          std::size_t n) {
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    Store(crow + j, Load(crow + j) + Load(brow + j) * av);
  }
  for (; j < n; ++j) crow[j] += av * brow[j];
}

void WideMatMulNN(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, float alpha, float beta) {
  ApplyBeta(c, m * n, beta);
  // Per C element the k loop still runs 0..k ascending (jb tiles are
  // disjoint columns, kb tiles are visited in order), matching the scalar
  // reference exactly.
  for (std::size_t jb = 0; jb < n; jb += kBlockN) {
    const std::size_t jn = std::min(kBlockN, n - jb);
    for (std::size_t kb = 0; kb < k; kb += kBlockK) {
      const std::size_t kn = std::min(kBlockK, k - kb);
      for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n + jb;
        for (std::size_t kk = kb; kk < kb + kn; ++kk) {
          const float av = alpha * arow[kk];
          if (av == 0.0f) continue;
          AccumulateRow(crow, b + kk * n + jb, av, jn);
        }
      }
    }
  }
}

void WideMatMulNT(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, float alpha, float beta) {
  ApplyBeta(c, m * n, beta);
  // Four output columns per pass: the A row is loaded once and streamed
  // against four B rows (4× fewer loads, four independent dependency
  // chains). Each column keeps its own accumulator/lanes/tail, so the FP
  // operation sequence per C element is identical to the one-column form
  // the scalar reference simulates — the unroll is invisible bitwise.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      V8f acc0 = {0, 0, 0, 0, 0, 0, 0, 0};
      V8f acc1 = {0, 0, 0, 0, 0, 0, 0, 0};
      V8f acc2 = {0, 0, 0, 0, 0, 0, 0, 0};
      V8f acc3 = {0, 0, 0, 0, 0, 0, 0, 0};
      std::size_t kk = 0;
      for (; kk + kLanes <= k; kk += kLanes) {
        const V8f av = Load(arow + kk);
        acc0 += av * Load(b0 + kk);
        acc1 += av * Load(b1 + kk);
        acc2 += av * Load(b2 + kk);
        acc3 += av * Load(b3 + kk);
      }
      float lanes[kLanes];
      Store(lanes, acc0);
      float s0 = ReduceLanes(lanes);
      Store(lanes, acc1);
      float s1 = ReduceLanes(lanes);
      Store(lanes, acc2);
      float s2 = ReduceLanes(lanes);
      Store(lanes, acc3);
      float s3 = ReduceLanes(lanes);
      for (; kk < k; ++kk) {
        const float av = arow[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      crow[j] += alpha * s0;
      crow[j + 1] += alpha * s1;
      crow[j + 2] += alpha * s2;
      crow[j + 3] += alpha * s3;
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      V8f acc = {0, 0, 0, 0, 0, 0, 0, 0};
      std::size_t kk = 0;
      for (; kk + kLanes <= k; kk += kLanes) {
        acc += Load(arow + kk) * Load(brow + kk);
      }
      float lanes[kLanes];
      Store(lanes, acc);
      float s = ReduceLanes(lanes);
      for (; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] += alpha * s;
    }
  }
}

void WideMatMulTN(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, float alpha, float beta) {
  ApplyBeta(c, m * n, beta);
  // A is stored k×m, so the k loop is outermost; jb tiling keeps the C slab
  // and the B row slice hot without touching the per-element k order.
  for (std::size_t jb = 0; jb < n; jb += kBlockN) {
    const std::size_t jn = std::min(kBlockN, n - jb);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = a + kk * m;
      const float* brow = b + kk * n + jb;
      for (std::size_t i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        AccumulateRow(c + i * n + jb, brow, av, jn);
      }
    }
  }
}

#endif  // RNA_SIMD_VECTOR_EXT

}  // namespace

void SetDispatch(Dispatch d) {
  g_dispatch.store(d, std::memory_order_relaxed);
}

Dispatch ActiveDispatch() {
  return g_dispatch.load(std::memory_order_relaxed);
}

namespace scalar {

void MatMulNN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta) {
  ApplyBeta(c, m * n, beta);
  // i-k-j with an ascending k accumulation per C element — the order the
  // wide path reproduces.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = alpha * arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulNT(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta) {
  ApplyBeta(c, m * n, beta);
  // The dot product over k is split into 8 independent partial sums folded
  // by a fixed pairwise tree — simulating the wide path's lanes so both
  // dispatches round identically.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
      std::size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        for (std::size_t l = 0; l < 8; ++l) {
          lanes[l] += arow[kk + l] * brow[kk + l];
        }
      }
      float s = ReduceLanes(lanes);
      for (; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] += alpha * s;
    }
  }
}

void MatMulTN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta) {
  ApplyBeta(c, m * n, beta);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace scalar

void MatMulNN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    WideMatMulNN(a, b, c, m, k, n, alpha, beta);
    return;
  }
#endif
  scalar::MatMulNN(a, b, c, m, k, n, alpha, beta);
}

void MatMulNT(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    WideMatMulNT(a, b, c, m, k, n, alpha, beta);
    return;
  }
#endif
  scalar::MatMulNT(a, b, c, m, k, n, alpha, beta);
}

void MatMulTN(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, float alpha, float beta) {
#if RNA_SIMD_VECTOR_EXT
  if (ActiveDispatch() == Dispatch::kAuto) {
    WideMatMulTN(a, b, c, m, k, n, alpha, beta);
    return;
  }
#endif
  scalar::MatMulTN(a, b, c, m, k, n, alpha, beta);
}

}  // namespace rna::common::simd
