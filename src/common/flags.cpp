#include "rna/common/flags.hpp"

#include <cstdlib>
#include <stdexcept>

namespace rna::common {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::GetInt(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got: " + it->second);
  }
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects a number, got: " + it->second);
  }
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace rna::common
