#include "rna/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rna::common {

void OnlineStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::Stddev() const { return std::sqrt(Variance()); }

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile q out of range");
  std::sort(samples.begin(), samples.end());
  const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

PercentileSummary Summarize(std::vector<double> samples) {
  PercentileSummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  OnlineStats os;
  for (double x : samples) os.Add(x);
  s.mean = os.Mean();
  s.stddev = os.Stddev();
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const double rank = q / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
  };
  s.min = samples.front();
  s.p5 = at(5);
  s.p25 = at(25);
  s.median = at(50);
  s.p75 = at(75);
  s.p95 = at(95);
  s.max = samples.back();
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("histogram needs at least one bin");
  if (!(lo < hi)) throw std::invalid_argument("histogram range must be non-empty");
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::BinLo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::BinHi(std::size_t bin) const { return BinLo(bin + 1); }

std::string Histogram::Render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    out << "[" << BinLo(b) << ", " << BinHi(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace rna::common
