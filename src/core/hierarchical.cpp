#include <algorithm>
#include <atomic>
#include <bit>
#include <numeric>
#include <span>
#include <thread>

#include "protocol_impls.hpp"
#include "rna/collectives/allreduce.hpp"
#include "rna/collectives/ring.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/ps/server.hpp"
#include "rna/ps/sharded.hpp"
#include "rna/sim/workload.hpp"
#include "rna/train/fault.hpp"
#include "rna/train/membership.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/sharding.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::core::detail {

using namespace rna::train;

// Hierarchical synchronization (§4): workers are partitioned into
// speed-homogeneous groups by the recursive ζ>v rule over calibrated
// iteration times (optionally size-capped for large worlds). Each group
// runs RNA internally with its own controller; each PS-sync round the
// group leader PushPulls the group model through the parameter-server
// layer (model averaging) and broadcasts the result inside the group.
// Groups never barrier against each other — the PS serves them
// asynchronously in arrival order, which is what defuses the deterministic
// slowdown that defeats purely probabilistic approaches.
//
// Scale-out structure (this file's additions over the flat engine):
//   * the PS layer is a recursive tree of nodes with bounded fan-in
//     (BuildPsTree): leaders talk to their leaf node, and every non-root
//     node periodically folds its state into its parent, so no endpoint
//     serves more than ps_fan_in direct children;
//   * each node is range-sharded into ps_shards independent servers;
//     leaders stripe push/pulls across the shards (ShardedPsClient);
//   * every group controller keeps a sharded ReadinessBoard and a
//     MembershipDirectory, so per-round controller work is O(group), with
//     O(1) trigger decisions, and membership is elastic (scheduled joins
//     and leaves re-form the group ring without a restart).
//
// Fault model (see DESIGN.md): membership travels in every Go message, the
// round's lowest-ranked survivor acts as group leader (PS sync + broadcast
// root + board publisher), mid-ring crashes abort the round via hop
// timeouts, and the PS sync degrades to skip-and-continue when the retry
// budget is exhausted. Under TrainerConfig::lockstep the grouping is
// computed from the *nominal* delay model (no wall-clock race) and PS syncs
// are serialized into (sync round, group id) order by a RoundRobinGate, so
// the whole run replays bit-identically.
TrainResult RunHierarchicalRna(const TrainerConfig& config,
                               const ModelFactory& factory,
                               const data::Dataset& train_data,
                               const data::Dataset& val_data) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 1, "need at least one worker");

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  const bool faulty = config.fault.Enabled();
  const bool lockstep = config.lockstep;

  // ---- calibration + grouping (ζ > v rule) ------------------------------
  std::vector<double> iter_times(world);
  const std::size_t calib = std::max<std::size_t>(1, config.calibration_iters);
  if (lockstep) {
    // Deterministic calibration: average the injected-delay model's nominal
    // samples (same seed stream the workers will use) instead of racing
    // wall clocks, so the grouping replays bit-identically.
    for (std::size_t w = 0; w < world; ++w) {
      double sum = 0.0;
      if (config.delay_model) {
        common::Rng rng(config.seed + 2000 + 97 * w);
        for (std::size_t i = 0; i < calib; ++i) {
          sum += config.delay_model->Sample(w, i, rng) * config.delay_scale;
        }
      }
      iter_times[w] = sum / static_cast<double>(calib);
    }
  } else {
    for (std::size_t w = 0; w < world; ++w) {
      iter_times[w] = workers[w]->MeasureIterationTime(init, calib);
    }
  }
  const std::vector<std::size_t> group_of =
      ComputeSpeedGroupsCapped(iter_times, config.max_group_size);
  std::size_t num_groups = 0;
  for (std::size_t g : group_of) num_groups = std::max(num_groups, g + 1);
  obs::SetGauge("hier.groups", static_cast<double>(num_groups));

  std::vector<collectives::Group> groups(num_groups);
  for (std::size_t w = 0; w < world; ++w) {
    groups[group_of[w]].members.push_back(w);
  }

  // ---- parameter-server layer: tree of range-sharded nodes ---------------
  const std::size_t shards =
      std::min(std::max<std::size_t>(1, config.ps_shards), dim);
  const PsTree tree = BuildPsTree(num_groups, config.ps_fan_in);
  const std::size_t num_nodes = tree.nodes.size();
  obs::SetGauge("hier.ps_nodes", static_cast<double>(num_nodes));
  obs::SetGauge("hier.ps_shards", static_cast<double>(shards));

  // Endpoint layout: [workers | group controllers | node-major PS shards].
  const net::Rank first_controller = world;
  const net::Rank first_ps = world + num_groups;
  auto ps_rank_of = [&](std::size_t node, std::size_t s) {
    return first_ps + node * shards + s;
  };
  net::Fabric fabric(world + num_groups + num_nodes * shards);

  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const common::Seconds ring_timeout =
      faulty ? config.fault.collective_timeout_s : 0.0;
  const common::Seconds report_budget =
      config.fault.collective_timeout_s + config.fault.probe_timeout_s;
  // Serializes the group leaders' PS syncs into (sync round, group id)
  // order under lockstep; unused otherwise (the async free-for-all *is* the
  // paper's design).
  RoundRobinGate ps_gate(num_groups);

  // Parents precede children in BuildPsTree's id order, so starting in id
  // order (and stopping in reverse) means a child's parent sync always
  // finds its parent serving.
  std::vector<std::unique_ptr<ps::ParameterServer>> servers;
  servers.reserve(num_nodes * shards);
  for (std::size_t node = 0; node < num_nodes; ++node) {
    for (std::size_t s = 0; s < shards; ++s) {
      const auto begin =
          static_cast<std::ptrdiff_t>(ShardBegin(dim, shards, s));
      const auto end = static_cast<std::ptrdiff_t>(ShardEnd(dim, shards, s));
      std::vector<float> slice(init.begin() + begin, init.begin() + end);
      auto server = std::make_unique<ps::ParameterServer>(
          fabric, ps_rank_of(node, s), std::move(slice));
      if (tree.nodes[node].parent != node) {
        server->ConfigureParent(
            ps_rank_of(tree.nodes[node].parent, s),
            config.ps_parent_sync_every,
            faulty ? config.fault.retry_budget : 1,
            config.fault.retry_timeout_s);
      }
      server->Start();
      servers.push_back(std::move(server));
    }
  }

  std::vector<std::unique_ptr<GradientStage>> stages;
  for (std::size_t w = 0; w < world; ++w) {
    stages.push_back(std::make_unique<GradientStage>(
        dim, config.staleness_bound, config.combine));
  }
  // The monitor's board (published by rank 0's group) plus one board per
  // group for the compute threads: a group's gradients are computed against
  // its *own* leader's model, never another group's — cross-group model
  // flow goes through the PS layer only. Under lockstep that keeps every
  // group's compute inputs on its own deterministic round boundary (a
  // shared board would race on the publishing group's timing).
  ParamBoard board(init);
  std::vector<std::unique_ptr<ParamBoard>> group_boards;
  group_boards.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    group_boards.push_back(std::make_unique<ParamBoard>(init));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> global_stop{false};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> batches_applied{0};
  // Written only by rank 0's group controller, read after joins.
  std::vector<std::size_t> round_contributors;
  // One membership directory and busy-time slot per group controller;
  // each is single-writer (its controller thread), read after join().
  std::vector<std::unique_ptr<MembershipDirectory>> directories;
  directories.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    directories.push_back(std::make_unique<MembershipDirectory>(
        groups[g].members, config.elastic));
  }
  std::vector<common::Seconds> ctrl_busy(num_groups, 0.0);
  std::vector<std::size_t> ctrl_msgs(num_groups, 0);

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> comm_times(world);
  std::vector<std::vector<float>> final_params(world);
  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  // ---- communication threads (one per worker) ----------------------------
  std::vector<std::thread> comm_threads;
  comm_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    comm_threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "comm"));
      const std::size_t g = group_of[w];
      const collectives::Group& full_group = groups[g];
      const net::Rank my_controller = first_controller + g;
      const std::size_t group_size = full_group.Size();

      std::vector<float> params = init;
      std::vector<float> buffer(dim);
      nn::SgdMomentum& optimizer = workers[w]->Optimizer();
      // Per-worker error-feedback residual for lossy compression; +1 for
      // the partial collective's contributor-flag tail.
      collectives::ErrorFeedback feedback;
      feedback.EnsureSize(dim + 1);
      ps::ShardedPsClient ps_client(fabric, w, ps_rank_of(tree.leaf_of[g], 0),
                                    shards, dim);
      if (faulty) {
        ps_client.ConfigureRetry(config.fault.retry_budget,
                                 config.fault.retry_timeout_s);
      }
      bool died = false;  // fail-stop exit, distinct from session end
      bool left = false;  // clean elastic departure, also not session end
      for (;;) {
        std::optional<net::Message> go;
        {
          obs::ScopedTimer wait_timer(track, obs::Category::kWait,
                                      "wait_trigger", &comm_times[w].wait);
          if (faulty) {
            while (!(go = fabric.RecvFor(w, tags::kGo, 0.05)).has_value()) {
              if (global_stop.load() || fabric.IsClosed(w) ||
                  !faults.Alive(w)) {
                break;
              }
            }
          } else {
            // Lossless fast path: without fault injection nothing can
            // drop the Go, and Shutdown() wakes the wait.
            go = fabric.Recv(w, tags::kGo);  // analyze:allow(timed-recv)
          }
        }
        if (!go.has_value()) {
          died = faulty && !faults.Alive(w);
          break;
        }
        if (go->meta.empty() || go->meta[0] < 0) {
          // Session over — or, with meta[1]==2, a personal exit for this
          // rank's scheduled elastic leave (the rest of the group keeps
          // training).
          left = go->meta.size() > 1 && go->meta[1] == 2;
          break;
        }
        const auto round = static_cast<std::size_t>(go->meta[0]);

        if (faults.ShouldCrashInRound(w, round)) {
          faults.Kill(w);
          obs::ScopedTimer crash_span(track, obs::Category::kFault, "crash");
          crash_span.SetArg("round", static_cast<double>(round));
          net::Message bye;
          bye.tag = tags::kGoodbye;
          bye.meta = {go->meta[0]};
          fabric.Send(w, my_controller, std::move(bye));
          died = true;
          break;
        }
        if (faulty && !faults.Alive(w)) {
          died = true;
          break;
        }

        // Round membership (survivors of this group) travels in the Go:
        // [round, verdict, member count, members..., joiners...]; a legacy
        // two-entry shape means the full group. A rank in the joiner tail
        // is not yet a ring member — it receives the round leader's state
        // transfer instead.
        collectives::Group group;
        std::vector<net::Rank> joiners;
        if (go->meta.size() > 2) {
          const auto member_count = static_cast<std::size_t>(go->meta[2]);
          for (std::size_t i = 3; i < go->meta.size(); ++i) {
            const auto r = static_cast<net::Rank>(go->meta[i]);
            if (i - 3 < member_count) {
              group.members.push_back(r);
            } else {
              joiners.push_back(r);
            }
          }
        } else {
          group = full_group;
        }
        if (std::find(joiners.begin(), joiners.end(), w) != joiners.end()) {
          // Joining rank: install the leader's replica (params ‖ velocity,
          // LR bit-cast into the meta) and acknowledge with a synced
          // report, so the controller activates this rank next round with
          // a state bitwise-identical to every group member's.
          std::optional<net::Message> state;
          if (faulty) {
            state = fabric.RecvFor(w, tags::JoinStateTag(round),
                                   config.fault.collective_timeout_s);
          } else {
            state = fabric.Recv(  // analyze:allow(timed-recv)
                w, tags::JoinStateTag(round));
          }
          bool synced = false;
          if (state.has_value() && state->data.size() == 2 * dim &&
              state->meta.size() > 1) {
            std::copy(state->data.begin(), state->data.begin() + dim,
                      params.begin());
            optimizer.SetVelocity(
                std::span<const float>(state->data.data() + dim, dim));
            optimizer.SetLearningRate(std::bit_cast<double>(state->meta[1]));
            fabric.Pool().Recycle(std::move(state->data));
            synced = true;
            obs::CountMetric("elastic.join_syncs");
          }
          net::Message report;
          report.tag = tags::kRoundEnd;
          // meta: [round, consumed=0, aborted=0, synced flag]
          report.meta = {go->meta[0], 0, 0, synced ? 1 : 0};
          fabric.Send(w, my_controller, std::move(report));
          continue;
        }
        const auto member_it =
            std::find(group.members.begin(), group.members.end(), w);
        if (member_it == group.members.end()) continue;
        const std::size_t my_index =
            static_cast<std::size_t>(member_it - group.members.begin());
        const bool leader = my_index == 0;

        // Step LR schedule: every worker decays at the same round.
        for (std::size_t milestone : config.lr_decay_rounds) {
          if (milestone == round) {
            optimizer.DecayLearningRate(config.lr_decay_factor);
          }
        }

        if (faulty && round > 0) {
          fabric.Purge(w, tags::kRingBase, tags::RingTag(round) - 1);
          fabric.Purge(w, tags::kGroupCastBase,
                       tags::GroupCastTag(round) - 1);
        }

        auto drained = stages[w]->Drain();
        const bool contributes = drained.has_value();
        if (contributes) {
          buffer = std::move(drained->grad);
        } else {
          std::fill(buffer.begin(), buffer.end(), 0.0f);
        }

        // The intra-group collective has no controller verdict feed, so
        // kStragglar degrades to the plain ring here (straggler stays
        // kNoStraggler); compression still applies.
        collectives::CollectiveOptions opts;
        opts.schedule = config.schedule;
        opts.compression = config.compression;
        opts.topk_fraction = config.topk_fraction;
        opts.tag_base = tags::RingTag(round);
        opts.hop_timeout = ring_timeout;
        opts.feedback = &feedback;
        collectives::PartialResult reduced;
        {
          obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                      "partial_allreduce",
                                      &comm_times[w].comm);
          comm_timer.SetArg("round", static_cast<double>(round));
          reduced = collectives::PartialAllreduceFor(
              {fabric, group, my_index}, opts, buffer, contributes);
          comm_timer.SetArg("contributors",
                            static_cast<double>(reduced.contributors));
        }
        if (!reduced.ok) {
          obs::ScopedTimer abort_span(track, obs::Category::kFault,
                                      "collective_abort");
          abort_span.SetArg("round", static_cast<double>(round));
          obs::CountMetric("fault.collective_aborts");
        }
        if (reduced.ok && reduced.contributors > 0) {
          const double scale =
              config.lr_policy == LrScalePolicy::kLinear
                  ? static_cast<double>(reduced.contributors) /
                        static_cast<double>(group_size)
                  : 1.0;
          optimizer.Step(params, buffer, scale);
        }

        // Asynchronous cross-group averaging through the PS tree (§4
        // phases 2–3): the round's leader stripes the group model across
        // its leaf node's shards, pulls back the running average, and
        // broadcasts it within the group. Skipped after an aborted
        // collective (the group model is stale, not wrong — the next sync
        // folds it in).
        if (reduced.ok && config.ps_sync_every > 0 &&
            round % config.ps_sync_every == 0) {
          if (leader) {
            obs::ScopedTimer ps_timer(track, obs::Category::kComm,
                                      "ps_push_pull", &comm_times[w].comm);
            ps_timer.SetArg("round", static_cast<double>(round));
            bool turn = true;
            if (lockstep) {
              // Deterministic PS ordering; under faults the wait is
              // bounded so a hung group ahead in the rotation cannot
              // stall this one forever.
              turn = faulty ? ps_gate.AcquireTurnFor(
                                  g, config.fault.collective_timeout_s)
                            : ps_gate.AcquireTurn(g);
            }
            if (turn) {
              if (auto avg =
                      ps_client.TryPushPull(params, ps::ApplyMode::kAverage)) {
                params = std::move(*avg);
              } else {
                // Retry budget exhausted: keep the local group model and
                // catch up at the next sync.
                obs::CountMetric("fault.ps_sync_skipped");
              }
              if (lockstep) ps_gate.ReleaseTurn(g);
            } else {
              obs::CountMetric("fault.ps_turn_timeouts");
            }
          }
          // The leader broadcasts whatever it ended up with (averaged or,
          // after a skipped sync, local), so followers never block on a
          // sync that didn't happen.
          obs::ScopedTimer bcast_timer(track, obs::Category::kComm,
                                       "group_broadcast",
                                       &comm_times[w].comm);
          bcast_timer.SetArg("round", static_cast<double>(round));
          const bool cast_ok = collectives::BroadcastFor(
              fabric, group, my_index, 0, params, tags::GroupCastTag(round),
              ring_timeout);
          if (!cast_ok) obs::CountMetric("fault.broadcast_timeouts");
        }

        // Every round's leader publishes the group model for its group's
        // compute threads; the lowest-ranked survivor of rank 0's group
        // also publishes for the monitor.
        if (leader) {
          group_boards[g]->Publish(params,
                                   static_cast<std::int64_t>(round) + 1);
          if (g == group_of[0]) {
            board.Publish(params, static_cast<std::int64_t>(round) + 1);
          }
        }
        if (leader && !joiners.empty()) {
          // Group leader ships its post-sync replica to each joining rank
          // (params ‖ velocity in the pooled payload, LR in the meta).
          // Re-sent every round a joiner stays syncing, so a transfer
          // lost to a fault is retried by the next leader.
          const std::span<const float> velocity = optimizer.Velocity();
          for (const net::Rank j : joiners) {
            net::Message state;
            state.tag = tags::JoinStateTag(round);
            state.meta = {go->meta[0],
                          std::bit_cast<std::int64_t>(
                              optimizer.LearningRate())};
            state.data = fabric.Pool().Acquire(2 * dim);
            std::copy(params.begin(), params.end(), state.data.begin());
            std::copy(velocity.begin(), velocity.end(),
                      state.data.begin() + dim);
            fabric.Send(w, j, std::move(state));
          }
        }

        net::Message report;
        report.tag = tags::kRoundEnd;
        report.meta = {go->meta[0],
                       contributes ? static_cast<std::int64_t>(drained->count)
                                   : 0,
                       reduced.ok ? 0 : 1};
        fabric.Send(w, my_controller, std::move(report));
      }
      // A leaver or a crash must not end the session; only the shared exit
      // Go (or a fabric shutdown) does.
      if (!died && !left) global_stop.store(true);
      final_params[w] = std::move(params);
    });
  }

  // ---- compute threads ----------------------------------------------------
  std::vector<std::thread> compute_threads;
  compute_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    compute_threads.emplace_back([&, w] {
      const net::Rank my_controller = first_controller + group_of[w];
      std::vector<float> params = init;
      std::vector<float> grad(dim);
      std::int64_t seen = 0;
      auto crash_now = [&](std::int64_t round_hint) {
        faults.Kill(w);
        obs::CountMetric("fault.worker.goodbyes");
        net::Message bye;
        bye.tag = tags::kGoodbye;
        bye.meta = {round_hint};
        fabric.Send(w, my_controller, std::move(bye));
      };
      if (lockstep) {
        for (;;) {
          std::optional<net::Message> token;
          while (!(token = fabric.RecvFor(w, tags::kStep, 0.05))
                      .has_value()) {
            // Lossless lockstep: global_stop only means *some* group
            // finished its rounds; this group's controller still owes an
            // exit token, so keep waiting for it (abandoning here would
            // leave the controller's step/ack handshake short and make
            // the tail rounds of slower groups racy).
            if (fabric.IsClosed(w) || (faulty && global_stop.load())) {
              return;
            }
          }
          if (token->meta.empty() || token->meta[0] < 0) return;
          if (!faults.Alive(w)) return;
          if (faulty && faults.BeforeIteration(w, workers[w]->Iterations()) ==
                            IterationFate::kCrash) {
            crash_now(token->meta[0]);
            return;
          }
          seen = group_boards[group_of[w]]->ReadIfNewer(seen, &params);
          workers[w]->ComputeGradient(params, grad);
          stages[w]->Write(grad,
                           static_cast<std::int64_t>(workers[w]->Iterations()));
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, my_controller, std::move(ready));
        }
      }
      while (!global_stop.load(std::memory_order_relaxed)) {
        if (faulty) {
          if (!faults.Alive(w)) return;
          if (faults.BeforeIteration(w, workers[w]->Iterations()) ==
              IterationFate::kCrash) {
            crash_now(-1);
            return;
          }
        }
        seen = group_boards[group_of[w]]->ReadIfNewer(seen, &params);
        workers[w]->ComputeGradient(params, grad);
        const bool grew = stages[w]->Write(
            grad, static_cast<std::int64_t>(workers[w]->Iterations()));
        if (grew) {
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, my_controller, std::move(ready));
        }
      }
    });
  }

  // ---- per-group controllers ---------------------------------------------
  std::vector<std::thread> controllers;
  controllers.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    controllers.emplace_back([&, g] {
      const obs::TrackHandle track = obs::RegisterTrack(
          "group" + std::to_string(g) + "/controller");
      const collectives::Group& group = groups[g];
      const std::size_t group_size = group.Size();
      MembershipDirectory& directory = *directories[g];
      common::Rng rng(config.seed + 9101 + 7 * g);
      auto policy = MakeProbePolicy(config.probe_choices);
      // Group-local sharded readiness aggregate, indexed by group index.
      ReadinessBoard readiness(group_size);
      std::vector<std::size_t> miss_count(group_size, 0);
      std::vector<bool> responded(group_size, false);

      auto index_of = [&](net::Rank rank) { return group.IndexOf(rank); };
      auto note_goodbye = [&](net::Rank src, std::size_t round) {
        if (!directory.Manages(src)) return;
        const MemberState was = directory.StateOf(src);
        if (was == MemberState::kDead || was == MemberState::kLeft) return;
        directory.OnDead(src);
        faults.Kill(src);
        readiness.Clear(index_of(src));
        obs::CountMetric("fault.controller.deaths");
        obs::ScopedTimer death_span(track, obs::Category::kFault,
                                    "worker_death");
        death_span.SetArg("rank", static_cast<double>(src));
        death_span.SetArg("round", static_cast<double>(round));
      };
      const net::Rank self = first_controller + g;
      auto broadcast_exit = [&] {
        for (std::size_t i = 0; i < group_size; ++i) {
          net::Message go;
          go.tag = tags::kGo;
          go.meta = {-1, 1};
          fabric.Send(self, group.At(i), std::move(go));
          net::Message step;
          step.tag = tags::kStep;
          step.meta = {-1};
          fabric.Send(self, group.At(i), std::move(step));
        }
      };

      // Under lossless lockstep every group's controller runs its full
      // round schedule: global_stop only records that another group's
      // session ended first, and honoring it here would make the number
      // of rounds (and so the batch accounting) of the remaining groups
      // depend on cross-group thread timing. The monitor's `stop` (early
      // target) still ends the loop; faulty runs keep the abort path.
      const bool lossless_lockstep = lockstep && !faulty;
      auto session_over = [&] {
        return stop.load() || (!lossless_lockstep && global_stop.load());
      };
      std::size_t round = 0;
      for (; round < config.max_rounds && !session_over(); ++round) {
        std::vector<net::Rank> members;
        std::vector<net::Rank> joiners;
        {
          // Busy time is accounted in thread-CPU seconds, not wall time:
          // with a thousand worker threads oversubscribing the cores, the
          // wall clock inside these sections measures preemption, and the
          // per-worker O(1) claim gated by bench_scale would drown in
          // scheduler noise. The ScopedTimer still records the wall span
          // for the trace.
          common::ScopedCpuAccumulator dispatch_cpu(&ctrl_busy[g]);
          obs::ScopedTimer dispatch_timer(track, obs::Category::kOther,
                                          "ctrl_dispatch");
          dispatch_timer.SetArg("round", static_cast<double>(round));
          const auto delta = directory.BeginRound(round);
          for (const net::Rank r : delta.leaving) {
            // Clean elastic departure: a personal exit Go (meta[1]==2
            // distinguishes it from session end) plus an exit step token.
            readiness.Clear(index_of(r));
            net::Message bye_go;
            bye_go.tag = tags::kGo;
            bye_go.meta = {-1, 2};
            fabric.Send(self, r, std::move(bye_go));
            net::Message bye_step;
            bye_step.tag = tags::kStep;
            bye_step.meta = {-1};
            fabric.Send(self, r, std::move(bye_step));
            ctrl_msgs[g] += 2;
            obs::CountMetric("elastic.leaves");
          }
          members = directory.ActiveMembers();
          joiners = directory.SyncingMembers();
        }
        if (members.empty()) break;
        policy->BeginRound(group_size, rng);

        if (lockstep) {
          {
            common::ScopedCpuAccumulator token_cpu(&ctrl_busy[g]);
            obs::ScopedTimer token_timer(track, obs::Category::kOther,
                                         "ctrl_tokens");
            for (net::Rank m : members) {
              net::Message step;
              step.tag = tags::kStep;
              step.meta = {static_cast<std::int64_t>(round)};
              fabric.Send(self, m, std::move(step));
            }
            ctrl_msgs[g] += members.size();
            std::fill(responded.begin(), responded.end(), false);
          }
          std::size_t got = 0;
          const int ack_tags[] = {tags::kReady, tags::kGoodbye};
          obs::ScopedTimer step_timer(track, obs::Category::kWait,
                                      "step_wait");
          step_timer.SetArg("round", static_cast<double>(round));
          while (got < members.size() && !session_over()) {
            std::optional<net::Message> msg;
            if (faulty) {
              const common::Seconds left =
                  report_budget - step_timer.Elapsed();
              if (left <= 0.0) break;
              msg = fabric.RecvAnyFor(self, ack_tags, left);
              if (!msg.has_value()) break;
            } else {
              // Lossless fast path: every live member acks its step
              // token, and Shutdown() wakes the wait.
              msg = fabric.RecvAny(  // analyze:allow(timed-recv)
                  self, ack_tags);
              if (!msg.has_value()) return;
            }
            common::ScopedCpuAccumulator handle_cpu(&ctrl_busy[g]);
            obs::ScopedTimer handle_timer(track, obs::Category::kOther,
                                          "ctrl_handle");
            ++ctrl_msgs[g];
            const std::size_t idx = index_of(msg->src);
            if (msg->tag == tags::kGoodbye) {
              note_goodbye(msg->src, round);
              if (!responded[idx]) {
                responded[idx] = true;
                ++got;
              }
              continue;
            }
            if (directory.IsActive(msg->src)) readiness.Add(idx, 1);
            if (!responded[idx]) {
              responded[idx] = true;
              ++got;
            }
          }
          step_timer.Stop();
          if (session_over()) break;
          members = directory.ActiveMembers();  // goodbyes may shrink it
          if (members.empty()) break;
        } else {
          obs::ScopedTimer probe_timer(track, obs::Category::kWait,
                                       "probe_wait");
          probe_timer.SetArg("round", static_cast<double>(round));
          common::Seconds election_start = 0.0;
          while (!stop.load() && !global_stop.load()) {
            while (auto note = fabric.TryRecv(self, tags::kReady)) {
              if (directory.IsActive(note->src)) {
                readiness.Add(index_of(note->src), 1);
              }
            }
            if (faulty) {
              while (auto bye = fabric.TryRecv(self, tags::kGoodbye)) {
                note_goodbye(bye->src, round);
              }
              while (auto late = fabric.TryRecv(self, tags::kRoundEnd)) {
                const std::size_t idx = index_of(late->src);
                readiness.Add(idx, -late->meta[1]);
                miss_count[idx] = 0;
                const bool was_aborted =
                    late->meta.size() > 2 && late->meta[2] != 0;
                if (!was_aborted) {
                  batches_applied.fetch_add(
                      static_cast<std::size_t>(late->meta[1]));
                }
              }
              if (directory.ActiveCount() == 0) break;
            }
            if (policy->ShouldTrigger(readiness)) break;
            if (faulty &&
                probe_timer.Elapsed() - election_start >
                    config.fault.probe_timeout_s) {
              if (readiness.ReadyRanks() > 0) {
                obs::CountMetric("fault.forced_triggers");
                break;
              }
              policy->BeginRound(group_size, rng);
              obs::CountMetric("fault.reelections");
              election_start = probe_timer.Elapsed();
            }
            auto note = fabric.RecvFor(self, tags::kReady, 0.002);
            if (note.has_value() && directory.IsActive(note->src)) {
              readiness.Add(index_of(note->src), 1);
            }
          }
          if (stop.load() || global_stop.load()) break;
          members = directory.ActiveMembers();
          if (members.empty()) break;
        }

        obs::ScopedTimer round_timer(track, obs::Category::kRound, "round");
        round_timer.SetArg("round", static_cast<double>(round));
        {
          common::ScopedCpuAccumulator go_cpu(&ctrl_busy[g]);
          obs::ScopedTimer go_timer(track, obs::Category::kOther, "ctrl_go");
          // [round, verdict=0, member count, members..., joiners...] — the
          // group collective has no straggler-verdict feed, so meta[1]
          // stays 0 here; see the flat engine for the verdict path.
          std::vector<std::int64_t> meta = {
              static_cast<std::int64_t>(round), 0,
              static_cast<std::int64_t>(members.size())};
          for (net::Rank r : members) {
            meta.push_back(static_cast<std::int64_t>(r));
          }
          for (net::Rank j : joiners) {
            meta.push_back(static_cast<std::int64_t>(j));
          }
          for (net::Rank m : members) {
            net::Message go;
            go.tag = tags::kGo;
            go.meta = meta;
            fabric.Send(self, m, std::move(go));
          }
          for (net::Rank j : joiners) {
            net::Message go;
            go.tag = tags::kGo;
            go.meta = meta;
            fabric.Send(self, j, std::move(go));
          }
          ctrl_msgs[g] += members.size() + joiners.size();
        }
        const int want[] = {tags::kRoundEnd, tags::kReady, tags::kGoodbye};
        std::size_t contributors = 0;
        std::size_t reports = 0;
        const std::size_t expected = members.size() + joiners.size();
        std::fill(responded.begin(), responded.end(), false);
        obs::ScopedTimer report_timer(track, obs::Category::kWait,
                                      "report_wait");
        while (reports < expected) {
          std::optional<net::Message> msg;
          if (faulty) {
            const common::Seconds left =
                report_budget - report_timer.Elapsed();
            if (left <= 0.0) break;
            msg = fabric.RecvAnyFor(self, want, left);
            if (!msg.has_value()) break;
          } else {
            // Lossless fast path: every member reports its round end,
            // and Shutdown() wakes the wait.
            msg = fabric.RecvAny(self, want);  // analyze:allow(timed-recv)
            if (!msg.has_value()) return;
          }
          common::ScopedCpuAccumulator handle_cpu(&ctrl_busy[g]);
          obs::ScopedTimer handle_timer(track, obs::Category::kOther,
                                        "ctrl_handle");
          ++ctrl_msgs[g];
          const std::size_t idx = index_of(msg->src);
          if (msg->tag == tags::kReady) {
            if (directory.IsActive(msg->src)) readiness.Add(idx, 1);
            continue;
          }
          if (msg->tag == tags::kGoodbye) {
            note_goodbye(msg->src, round);
            const bool counted =
                std::find(members.begin(), members.end(), msg->src) !=
                    members.end() ||
                std::find(joiners.begin(), joiners.end(), msg->src) !=
                    joiners.end();
            if (counted && !responded[idx]) {
              responded[idx] = true;
              ++reports;
            }
            continue;
          }
          readiness.Add(idx, -msg->meta[1]);
          miss_count[idx] = 0;
          const bool aborted = msg->meta.size() > 2 && msg->meta[2] != 0;
          if (!aborted) {
            batches_applied.fetch_add(static_cast<std::size_t>(msg->meta[1]));
          }
          if (static_cast<std::size_t>(msg->meta[0]) != round) continue;
          if (!responded[idx]) {
            responded[idx] = true;
            ++reports;
          }
          if (directory.IsSyncing(msg->src)) {
            // A joiner's sync ack: meta[3] == 1 means the state transfer
            // landed and the rank becomes active next round; a zero flag
            // keeps it syncing (the next Go re-lists it).
            if (msg->meta.size() > 3 && msg->meta[3] != 0) {
              directory.OnSynced(msg->src);
              obs::CountMetric("elastic.joins");
            }
            continue;
          }
          if (!aborted && msg->meta[1] > 0) ++contributors;
        }
        report_timer.Stop();
        if (reports < expected) {
          auto strike = [&](net::Rank m) {
            const MemberState s = directory.StateOf(m);
            if (s == MemberState::kDead || s == MemberState::kLeft) return;
            const std::size_t idx = index_of(m);
            if (responded[idx]) return;
            if (++miss_count[idx] >= config.fault.dead_after_misses) {
              note_goodbye(m, round);
              obs::CountMetric("fault.declared_dead");
            }
          };
          for (net::Rank m : members) strike(m);
          for (net::Rank j : joiners) strike(j);
          obs::CountMetric("fault.report_deadline_misses");
        }
        round_timer.SetArg("contributors", static_cast<double>(contributors));
        obs::ObserveMetric("round.contributors",
                           static_cast<double>(contributors));
        if (g == group_of[0]) {
          obs::CountMetric("round.count");
          round_contributors.push_back(contributors);
          rounds_done.fetch_add(1);
        }
      }
      broadcast_exit();
      // Free any leader of another group still waiting for this group's
      // PS-sync turn.
      ps_gate.Retire(g);
    });
  }

  for (auto& t : controllers) t.join();
  for (auto& t : comm_threads) t.join();
  for (auto& t : compute_threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();
  // Children before parents: an in-flight parent sync must still find its
  // parent serving.
  for (auto it = servers.rbegin(); it != servers.rend(); ++it) {
    (*it)->Stop();
  }

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = batches_applied.load();
  for (auto& stage : stages) result.gradients_dropped += stage->Dropped();
  obs::CountMetric("stage.staleness_drops",
                   static_cast<std::int64_t>(result.gradients_dropped));
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.round_contributors = std::move(round_contributors);
  result.live_workers = faults.LiveCount();
  for (const auto& directory : directories) {
    result.workers_joined += directory->JoinedTotal();
    result.workers_left += directory->LeftTotal();
  }
  for (const common::Seconds busy : ctrl_busy) {
    result.controller_busy_seconds += busy;
  }
  for (const std::size_t msgs : ctrl_msgs) {
    result.controller_messages += msgs;
  }
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].wait = comm_times[w].wait;
    result.breakdown[w].comm = comm_times[w].comm;
  }
  // The lowest surviving active rank's replica is the result; a clean
  // leaver's (or never-joined pending rank's) replica is frozen early.
  std::size_t reporter = 0;
  bool found = false;
  for (std::size_t w = 0; w < world && !found; ++w) {
    if (directories[group_of[w]]->IsActive(w) && faults.Alive(w)) {
      reporter = w;
      found = true;
    }
  }
  for (std::size_t w = 0; w < world && !found; ++w) {
    if (faults.Alive(w)) {
      reporter = w;
      found = true;
    }
  }
  result.final_params = final_params[reporter];
  const nn::BatchResult final_eval = monitor.FullEval(result.final_params);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), result.final_params, train_data, 2048)
          .loss;
  return result;
}

}  // namespace rna::core::detail
