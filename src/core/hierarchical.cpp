#include <algorithm>
#include <atomic>
#include <thread>

#include "protocol_impls.hpp"
#include "rna/collectives/allreduce.hpp"
#include "rna/collectives/ring.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/ps/server.hpp"
#include "rna/sim/workload.hpp"
#include "rna/train/fault.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::core::detail {

using namespace rna::train;

// Hierarchical synchronization (§4): workers are partitioned into
// speed-homogeneous groups by the recursive ζ>v rule over calibrated
// iteration times. Each group runs RNA internally with its own controller;
// each PS-sync round the group leader PushPulls the group model through a
// central parameter server (model averaging) and broadcasts the result
// inside the group. Groups never barrier against each other — the PS serves
// them asynchronously in arrival order, which is what defuses the
// deterministic slowdown that defeats purely probabilistic approaches.
//
// Fault model (see DESIGN.md): membership travels in every Go message, the
// round's lowest-ranked survivor acts as group leader (PS sync + broadcast
// root + board publisher), mid-ring crashes abort the round via hop
// timeouts, and the PS sync degrades to skip-and-continue when the retry
// budget is exhausted. Under TrainerConfig::lockstep the grouping is
// computed from the *nominal* delay model (no wall-clock race) and PS syncs
// are serialized into (sync round, group id) order by a RoundRobinGate, so
// the whole run replays bit-identically.
TrainResult RunHierarchicalRna(const TrainerConfig& config,
                               const ModelFactory& factory,
                               const data::Dataset& train_data,
                               const data::Dataset& val_data) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 1, "need at least one worker");

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  const bool faulty = config.fault.Enabled();
  const bool lockstep = config.lockstep;

  // ---- calibration + grouping (ζ > v rule) ------------------------------
  std::vector<double> iter_times(world);
  const std::size_t calib = std::max<std::size_t>(1, config.calibration_iters);
  if (lockstep) {
    // Deterministic calibration: average the injected-delay model's nominal
    // samples (same seed stream the workers will use) instead of racing
    // wall clocks, so the grouping replays bit-identically.
    for (std::size_t w = 0; w < world; ++w) {
      double sum = 0.0;
      if (config.delay_model) {
        common::Rng rng(config.seed + 2000 + 97 * w);
        for (std::size_t i = 0; i < calib; ++i) {
          sum += config.delay_model->Sample(w, i, rng) * config.delay_scale;
        }
      }
      iter_times[w] = sum / static_cast<double>(calib);
    }
  } else {
    for (std::size_t w = 0; w < world; ++w) {
      iter_times[w] = workers[w]->MeasureIterationTime(init, calib);
    }
  }
  const std::vector<std::size_t> group_of = ComputeSpeedGroups(iter_times);
  std::size_t num_groups = 0;
  for (std::size_t g : group_of) num_groups = std::max(num_groups, g + 1);
  obs::SetGauge("hier.groups", static_cast<double>(num_groups));

  std::vector<collectives::Group> groups(num_groups);
  for (std::size_t w = 0; w < world; ++w) {
    groups[group_of[w]].members.push_back(w);
  }

  // Endpoint layout: [workers | group controllers | parameter server].
  const net::Rank first_controller = world;
  const net::Rank ps_rank = world + num_groups;
  net::Fabric fabric(world + num_groups + 1);

  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const common::Seconds ring_timeout =
      faulty ? config.fault.collective_timeout_s : 0.0;
  const common::Seconds report_budget =
      config.fault.collective_timeout_s + config.fault.probe_timeout_s;
  // Serializes the group leaders' PS syncs into (sync round, group id)
  // order under lockstep; unused otherwise (the async free-for-all *is* the
  // paper's design).
  RoundRobinGate ps_gate(num_groups);

  ps::ParameterServer server(fabric, ps_rank, init);
  server.Start();

  std::vector<std::unique_ptr<GradientStage>> stages;
  for (std::size_t w = 0; w < world; ++w) {
    stages.push_back(std::make_unique<GradientStage>(
        dim, config.staleness_bound, config.combine));
  }
  ParamBoard board(init);

  std::atomic<bool> stop{false};
  std::atomic<bool> global_stop{false};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> batches_applied{0};
  // Written only by rank 0's group controller, read after joins.
  std::vector<std::size_t> round_contributors;

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> comm_times(world);
  std::vector<std::vector<float>> final_params(world);
  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  // ---- communication threads (one per worker) ----------------------------
  std::vector<std::thread> comm_threads;
  comm_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    comm_threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "comm"));
      const std::size_t g = group_of[w];
      const collectives::Group& full_group = groups[g];
      const net::Rank my_controller = first_controller + g;
      const std::size_t group_size = full_group.Size();

      std::vector<float> params = init;
      std::vector<float> buffer(dim);
      nn::SgdMomentum& optimizer = workers[w]->Optimizer();
      // Per-worker error-feedback residual for lossy compression; +1 for
      // the partial collective's contributor-flag tail.
      collectives::ErrorFeedback feedback;
      feedback.EnsureSize(dim + 1);
      ps::PsClient ps_client(fabric, w, ps_rank);
      if (faulty) {
        ps_client.ConfigureRetry(config.fault.retry_budget,
                                 config.fault.retry_timeout_s);
      }
      bool died = false;
      for (;;) {
        std::optional<net::Message> go;
        {
          obs::ScopedTimer wait_timer(track, obs::Category::kWait,
                                      "wait_trigger", &comm_times[w].wait);
          if (faulty) {
            while (!(go = fabric.RecvFor(w, tags::kGo, 0.05)).has_value()) {
              if (global_stop.load() || fabric.IsClosed(w) ||
                  !faults.Alive(w)) {
                break;
              }
            }
          } else {
            // Lossless fast path: without fault injection nothing can
            // drop the Go, and Shutdown() wakes the wait.
            go = fabric.Recv(w, tags::kGo);  // analyze:allow(timed-recv)
          }
        }
        if (!go.has_value()) {
          died = faulty && !faults.Alive(w);
          break;
        }
        if (go->meta.empty() || go->meta[0] < 0) break;
        const auto round = static_cast<std::size_t>(go->meta[0]);

        if (faults.ShouldCrashInRound(w, round)) {
          faults.Kill(w);
          obs::ScopedTimer crash_span(track, obs::Category::kFault, "crash");
          crash_span.SetArg("round", static_cast<double>(round));
          net::Message bye;
          bye.tag = tags::kGoodbye;
          bye.meta = {go->meta[0]};
          fabric.Send(w, my_controller, std::move(bye));
          died = true;
          break;
        }
        if (faulty && !faults.Alive(w)) {
          died = true;
          break;
        }

        // Round membership (survivors of this group) from the Go.
        collectives::Group group;
        if (go->meta.size() > 2) {
          for (std::size_t i = 2; i < go->meta.size(); ++i) {
            group.members.push_back(static_cast<net::Rank>(go->meta[i]));
          }
        } else {
          group = full_group;
        }
        const auto member_it =
            std::find(group.members.begin(), group.members.end(), w);
        if (member_it == group.members.end()) continue;
        const std::size_t my_index =
            static_cast<std::size_t>(member_it - group.members.begin());
        const bool leader = my_index == 0;

        // Step LR schedule: every worker decays at the same round.
        for (std::size_t milestone : config.lr_decay_rounds) {
          if (milestone == round) {
            optimizer.DecayLearningRate(config.lr_decay_factor);
          }
        }

        if (faulty && round > 0) {
          fabric.Purge(w, tags::kRingBase, tags::RingTag(round) - 1);
          fabric.Purge(w, tags::kGroupCastBase,
                       tags::GroupCastTag(round) - 1);
        }

        auto drained = stages[w]->Drain();
        const bool contributes = drained.has_value();
        if (contributes) {
          buffer = std::move(drained->grad);
        } else {
          std::fill(buffer.begin(), buffer.end(), 0.0f);
        }

        // The intra-group collective has no controller verdict feed, so
        // kStragglar degrades to the plain ring here (straggler stays
        // kNoStraggler); compression still applies.
        collectives::CollectiveOptions opts;
        opts.schedule = config.schedule;
        opts.compression = config.compression;
        opts.topk_fraction = config.topk_fraction;
        opts.tag_base = tags::RingTag(round);
        opts.hop_timeout = ring_timeout;
        opts.feedback = &feedback;
        collectives::PartialResult reduced;
        {
          obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                      "partial_allreduce",
                                      &comm_times[w].comm);
          comm_timer.SetArg("round", static_cast<double>(round));
          reduced = collectives::PartialAllreduceFor(
              {fabric, group, my_index}, opts, buffer, contributes);
          comm_timer.SetArg("contributors",
                            static_cast<double>(reduced.contributors));
        }
        if (!reduced.ok) {
          obs::ScopedTimer abort_span(track, obs::Category::kFault,
                                      "collective_abort");
          abort_span.SetArg("round", static_cast<double>(round));
          obs::CountMetric("fault.collective_aborts");
        }
        if (reduced.ok && reduced.contributors > 0) {
          const double scale =
              config.lr_policy == LrScalePolicy::kLinear
                  ? static_cast<double>(reduced.contributors) /
                        static_cast<double>(group_size)
                  : 1.0;
          optimizer.Step(params, buffer, scale);
        }

        // Asynchronous cross-group averaging through the PS (§4 phases
        // 2–3): the round's leader pushes the group model, pulls back the
        // running average, and broadcasts it within the group. Skipped
        // after an aborted collective (the group model is stale, not
        // wrong — the next sync folds it in).
        if (reduced.ok && config.ps_sync_every > 0 &&
            round % config.ps_sync_every == 0) {
          if (leader) {
            obs::ScopedTimer ps_timer(track, obs::Category::kComm,
                                      "ps_push_pull", &comm_times[w].comm);
            ps_timer.SetArg("round", static_cast<double>(round));
            bool turn = true;
            if (lockstep) {
              // Deterministic PS ordering; under faults the wait is
              // bounded so a hung group ahead in the rotation cannot
              // stall this one forever.
              turn = faulty ? ps_gate.AcquireTurnFor(
                                  g, config.fault.collective_timeout_s)
                            : ps_gate.AcquireTurn(g);
            }
            if (turn) {
              if (auto avg =
                      ps_client.TryPushPull(params, ps::ApplyMode::kAverage)) {
                params = std::move(*avg);
              } else {
                // Retry budget exhausted: keep the local group model and
                // catch up at the next sync.
                obs::CountMetric("fault.ps_sync_skipped");
              }
              if (lockstep) ps_gate.ReleaseTurn(g);
            } else {
              obs::CountMetric("fault.ps_turn_timeouts");
            }
          }
          // The leader broadcasts whatever it ended up with (averaged or,
          // after a skipped sync, local), so followers never block on a
          // sync that didn't happen.
          obs::ScopedTimer bcast_timer(track, obs::Category::kComm,
                                       "group_broadcast",
                                       &comm_times[w].comm);
          bcast_timer.SetArg("round", static_cast<double>(round));
          const bool cast_ok = collectives::BroadcastFor(
              fabric, group, my_index, 0, params, tags::GroupCastTag(round),
              ring_timeout);
          if (!cast_ok) obs::CountMetric("fault.broadcast_timeouts");
        }

        // The lowest-ranked survivor of rank 0's group publishes for the
        // monitor.
        if (g == group_of[0] && leader) {
          board.Publish(params, static_cast<std::int64_t>(round) + 1);
        }

        net::Message report;
        report.tag = tags::kRoundEnd;
        report.meta = {go->meta[0],
                       contributes ? static_cast<std::int64_t>(drained->count)
                                   : 0,
                       reduced.ok ? 0 : 1};
        fabric.Send(w, my_controller, std::move(report));
      }
      if (!died) global_stop.store(true);
      final_params[w] = std::move(params);
    });
  }

  // ---- compute threads ----------------------------------------------------
  std::vector<std::thread> compute_threads;
  compute_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    compute_threads.emplace_back([&, w] {
      const net::Rank my_controller = first_controller + group_of[w];
      std::vector<float> params = init;
      std::vector<float> grad(dim);
      std::int64_t seen = 0;
      auto crash_now = [&](std::int64_t round_hint) {
        faults.Kill(w);
        obs::CountMetric("fault.worker.goodbyes");
        net::Message bye;
        bye.tag = tags::kGoodbye;
        bye.meta = {round_hint};
        fabric.Send(w, my_controller, std::move(bye));
      };
      if (lockstep) {
        for (;;) {
          std::optional<net::Message> token;
          while (!(token = fabric.RecvFor(w, tags::kStep, 0.05))
                      .has_value()) {
            if (global_stop.load() || fabric.IsClosed(w)) return;
          }
          if (token->meta.empty() || token->meta[0] < 0) return;
          if (!faults.Alive(w)) return;
          if (faulty && faults.BeforeIteration(w, workers[w]->Iterations()) ==
                            IterationFate::kCrash) {
            crash_now(token->meta[0]);
            return;
          }
          seen = board.ReadIfNewer(seen, &params);
          workers[w]->ComputeGradient(params, grad);
          stages[w]->Write(grad,
                           static_cast<std::int64_t>(workers[w]->Iterations()));
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, my_controller, std::move(ready));
        }
      }
      while (!global_stop.load(std::memory_order_relaxed)) {
        if (faulty) {
          if (!faults.Alive(w)) return;
          if (faults.BeforeIteration(w, workers[w]->Iterations()) ==
              IterationFate::kCrash) {
            crash_now(-1);
            return;
          }
        }
        seen = board.ReadIfNewer(seen, &params);
        workers[w]->ComputeGradient(params, grad);
        const bool grew = stages[w]->Write(
            grad, static_cast<std::int64_t>(workers[w]->Iterations()));
        if (grew) {
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, my_controller, std::move(ready));
        }
      }
    });
  }

  // ---- per-group controllers ---------------------------------------------
  std::vector<std::thread> controllers;
  controllers.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    controllers.emplace_back([&, g] {
      const obs::TrackHandle track = obs::RegisterTrack(
          "group" + std::to_string(g) + "/controller");
      const collectives::Group& group = groups[g];
      const std::size_t group_size = group.Size();
      common::Rng rng(config.seed + 9101 + 7 * g);
      auto policy = MakeProbePolicy(config.probe_choices);
      std::vector<std::int64_t> ready(group_size, 0);
      std::vector<bool> live(group_size, true);
      std::vector<std::size_t> miss_count(group_size, 0);
      std::vector<bool> responded(group_size, false);

      auto index_of = [&](net::Rank rank) { return group.IndexOf(rank); };
      auto live_members = [&] {
        std::vector<net::Rank> members;
        for (std::size_t i = 0; i < group_size; ++i) {
          if (live[i]) members.push_back(group.At(i));
        }
        return members;
      };
      auto note_goodbye = [&](net::Rank src, std::size_t round) {
        const std::size_t idx = index_of(src);
        if (!live[idx]) return;
        live[idx] = false;
        faults.Kill(src);
        ready[idx] = 0;
        obs::CountMetric("fault.controller.deaths");
        obs::ScopedTimer death_span(track, obs::Category::kFault,
                                    "worker_death");
        death_span.SetArg("rank", static_cast<double>(src));
        death_span.SetArg("round", static_cast<double>(round));
      };
      auto broadcast_exit = [&] {
        for (std::size_t i = 0; i < group_size; ++i) {
          const net::Rank self = first_controller + g;
          net::Message go;
          go.tag = tags::kGo;
          go.meta = {-1, 1};
          fabric.Send(self, group.At(i), std::move(go));
          net::Message step;
          step.tag = tags::kStep;
          step.meta = {-1};
          fabric.Send(self, group.At(i), std::move(step));
        }
      };
      const net::Rank self = first_controller + g;

      std::size_t round = 0;
      for (; round < config.max_rounds && !global_stop.load(); ++round) {
        std::vector<net::Rank> members = live_members();
        if (members.empty()) break;
        policy->BeginRound(group_size, rng);

        if (lockstep) {
          for (net::Rank m : members) {
            net::Message step;
            step.tag = tags::kStep;
            step.meta = {static_cast<std::int64_t>(round)};
            fabric.Send(self, m, std::move(step));
          }
          std::fill(responded.begin(), responded.end(), false);
          std::size_t got = 0;
          const int ack_tags[] = {tags::kReady, tags::kGoodbye};
          obs::ScopedTimer step_timer(track, obs::Category::kWait,
                                      "step_wait");
          step_timer.SetArg("round", static_cast<double>(round));
          while (got < members.size() && !stop.load() &&
                 !global_stop.load()) {
            std::optional<net::Message> msg;
            if (faulty) {
              const common::Seconds left =
                  report_budget - step_timer.Elapsed();
              if (left <= 0.0) break;
              msg = fabric.RecvAnyFor(self, ack_tags, left);
              if (!msg.has_value()) break;
            } else {
              // Lossless fast path: every live member acks its step
              // token, and Shutdown() wakes the wait.
              msg = fabric.RecvAny(  // analyze:allow(timed-recv)
                  self, ack_tags);
              if (!msg.has_value()) return;
            }
            const std::size_t idx = index_of(msg->src);
            if (msg->tag == tags::kGoodbye) {
              note_goodbye(msg->src, round);
              if (!responded[idx]) {
                responded[idx] = true;
                ++got;
              }
              continue;
            }
            if (live[idx]) ++ready[idx];
            if (!responded[idx]) {
              responded[idx] = true;
              ++got;
            }
          }
          step_timer.Stop();
          if (stop.load() || global_stop.load()) break;
          members = live_members();
          if (members.empty()) break;
        } else {
          obs::ScopedTimer probe_timer(track, obs::Category::kWait,
                                       "probe_wait");
          probe_timer.SetArg("round", static_cast<double>(round));
          common::Seconds election_start = 0.0;
          while (!stop.load() && !global_stop.load()) {
            while (auto note = fabric.TryRecv(self, tags::kReady)) {
              const std::size_t idx = index_of(note->src);
              if (live[idx]) ++ready[idx];
            }
            if (faulty) {
              while (auto bye = fabric.TryRecv(self, tags::kGoodbye)) {
                note_goodbye(bye->src, round);
              }
              while (auto late = fabric.TryRecv(self, tags::kRoundEnd)) {
                const std::size_t idx = index_of(late->src);
                ready[idx] -= late->meta[1];
                miss_count[idx] = 0;
                const bool was_aborted =
                    late->meta.size() > 2 && late->meta[2] != 0;
                if (!was_aborted) {
                  batches_applied.fetch_add(
                      static_cast<std::size_t>(late->meta[1]));
                }
              }
              if (live_members().empty()) break;
            }
            if (policy->ShouldTrigger(ready)) break;
            if (faulty &&
                probe_timer.Elapsed() - election_start >
                    config.fault.probe_timeout_s) {
              bool any_ready = false;
              for (std::size_t i = 0; i < group_size; ++i) {
                if (live[i] && ready[i] > 0) any_ready = true;
              }
              if (any_ready) {
                obs::CountMetric("fault.forced_triggers");
                break;
              }
              policy->BeginRound(group_size, rng);
              obs::CountMetric("fault.reelections");
              election_start = probe_timer.Elapsed();
            }
            auto note = fabric.RecvFor(self, tags::kReady, 0.002);
            if (note.has_value()) {
              const std::size_t idx = index_of(note->src);
              if (live[idx]) ++ready[idx];
            }
          }
          if (stop.load() || global_stop.load()) break;
          members = live_members();
          if (members.empty()) break;
        }

        obs::ScopedTimer round_timer(track, obs::Category::kRound, "round");
        round_timer.SetArg("round", static_cast<double>(round));
        for (net::Rank m : members) {
          net::Message go;
          go.tag = tags::kGo;
          go.meta = {static_cast<std::int64_t>(round), 0};
          for (net::Rank r : members) {
            go.meta.push_back(static_cast<std::int64_t>(r));
          }
          fabric.Send(self, m, std::move(go));
        }
        const int want[] = {tags::kRoundEnd, tags::kReady, tags::kGoodbye};
        std::size_t contributors = 0;
        std::size_t reports = 0;
        std::fill(responded.begin(), responded.end(), false);
        obs::ScopedTimer report_timer(track, obs::Category::kWait,
                                      "report_wait");
        while (reports < members.size()) {
          std::optional<net::Message> msg;
          if (faulty) {
            const common::Seconds left =
                report_budget - report_timer.Elapsed();
            if (left <= 0.0) break;
            msg = fabric.RecvAnyFor(self, want, left);
            if (!msg.has_value()) break;
          } else {
            // Lossless fast path: every member reports its round end,
            // and Shutdown() wakes the wait.
            msg = fabric.RecvAny(self, want);  // analyze:allow(timed-recv)
            if (!msg.has_value()) return;
          }
          const std::size_t idx = index_of(msg->src);
          if (msg->tag == tags::kReady) {
            if (live[idx]) ++ready[idx];
            continue;
          }
          if (msg->tag == tags::kGoodbye) {
            note_goodbye(msg->src, round);
            const bool is_member = std::find(members.begin(), members.end(),
                                             msg->src) != members.end();
            if (is_member && !responded[idx]) {
              responded[idx] = true;
              ++reports;
            }
            continue;
          }
          ready[idx] -= msg->meta[1];
          miss_count[idx] = 0;
          const bool aborted = msg->meta.size() > 2 && msg->meta[2] != 0;
          if (!aborted) {
            batches_applied.fetch_add(static_cast<std::size_t>(msg->meta[1]));
          }
          if (static_cast<std::size_t>(msg->meta[0]) != round) continue;
          if (!responded[idx]) {
            responded[idx] = true;
            ++reports;
          }
          if (!aborted && msg->meta[1] > 0) ++contributors;
        }
        report_timer.Stop();
        if (reports < members.size()) {
          for (net::Rank m : members) {
            const std::size_t idx = index_of(m);
            if (responded[idx] || !live[idx]) continue;
            if (++miss_count[idx] >= config.fault.dead_after_misses) {
              note_goodbye(m, round);
              obs::CountMetric("fault.declared_dead");
            }
          }
          obs::CountMetric("fault.report_deadline_misses");
        }
        round_timer.SetArg("contributors", static_cast<double>(contributors));
        obs::ObserveMetric("round.contributors",
                           static_cast<double>(contributors));
        if (g == group_of[0]) {
          obs::CountMetric("round.count");
          round_contributors.push_back(contributors);
          rounds_done.fetch_add(1);
        }
      }
      broadcast_exit();
      // Free any leader of another group still waiting for this group's
      // PS-sync turn.
      ps_gate.Retire(g);
    });
  }

  for (auto& t : controllers) t.join();
  for (auto& t : comm_threads) t.join();
  for (auto& t : compute_threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();
  server.Stop();

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = batches_applied.load();
  for (auto& stage : stages) result.gradients_dropped += stage->Dropped();
  obs::CountMetric("stage.staleness_drops",
                   static_cast<std::int64_t>(result.gradients_dropped));
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.round_contributors = std::move(round_contributors);
  result.live_workers = faults.LiveCount();
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].wait = comm_times[w].wait;
    result.breakdown[w].comm = comm_times[w].comm;
  }
  std::size_t reporter = 0;
  for (std::size_t w = 0; w < world; ++w) {
    if (faults.Alive(w)) {
      reporter = w;
      break;
    }
  }
  result.final_params = final_params[reporter];
  const nn::BatchResult final_eval = monitor.FullEval(result.final_params);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), result.final_params, train_data, 2048)
          .loss;
  return result;
}

}  // namespace rna::core::detail
