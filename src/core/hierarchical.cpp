#include <atomic>
#include <thread>

#include "protocol_impls.hpp"
#include "rna/collectives/ring.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/ps/server.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::core::detail {

using namespace rna::train;

// Hierarchical synchronization (§4): workers are partitioned into
// speed-homogeneous groups by the recursive ζ>v rule over calibrated
// iteration times. Each group runs RNA internally with its own controller;
// each PS-sync round the group leader PushPulls the group model through a
// central parameter server (model averaging) and broadcasts the result
// inside the group. Groups never barrier against each other — the PS serves
// them asynchronously in arrival order, which is what defuses the
// deterministic slowdown that defeats purely probabilistic approaches.
TrainResult RunHierarchicalRna(const TrainerConfig& config,
                               const ModelFactory& factory,
                               const data::Dataset& train_data,
                               const data::Dataset& val_data) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 1, "need at least one worker");

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  const std::vector<float> init = InitialParams(config, factory);

  // ---- calibration + grouping (ζ > v rule) ------------------------------
  std::vector<double> iter_times(world);
  for (std::size_t w = 0; w < world; ++w) {
    iter_times[w] = workers[w]->MeasureIterationTime(
        init, std::max<std::size_t>(1, config.calibration_iters));
  }
  const std::vector<std::size_t> group_of = ComputeSpeedGroups(iter_times);
  std::size_t num_groups = 0;
  for (std::size_t g : group_of) num_groups = std::max(num_groups, g + 1);
  obs::SetGauge("hier.groups", static_cast<double>(num_groups));

  std::vector<collectives::Group> groups(num_groups);
  for (std::size_t w = 0; w < world; ++w) {
    groups[group_of[w]].members.push_back(w);
  }

  // Endpoint layout: [workers | group controllers | parameter server].
  const net::Rank first_controller = world;
  const net::Rank ps_rank = world + num_groups;
  net::Fabric fabric(world + num_groups + 1);

  ps::ParameterServer server(fabric, ps_rank, init);
  server.Start();

  std::vector<std::unique_ptr<GradientStage>> stages;
  for (std::size_t w = 0; w < world; ++w) {
    stages.push_back(std::make_unique<GradientStage>(
        dim, config.staleness_bound, config.combine));
  }
  ParamBoard board(init);

  std::atomic<bool> stop{false};
  std::atomic<bool> global_stop{false};
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> batches_applied{0};
  // Written only by worker 0's group controller, read after joins.
  std::vector<std::size_t> round_contributors;

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> comm_times(world);
  std::vector<std::vector<float>> final_params(world);
  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  // ---- communication threads (one per worker) ----------------------------
  std::vector<std::thread> comm_threads;
  comm_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    comm_threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "comm"));
      const collectives::Group& group = groups[group_of[w]];
      const std::size_t my_index = group.IndexOf(w);
      const net::Rank my_controller = first_controller + group_of[w];
      const std::size_t group_size = group.Size();

      std::vector<float> params = init;
      std::vector<float> buffer(dim);
      nn::SgdMomentum& optimizer = workers[w]->Optimizer();
      ps::PsClient ps_client(fabric, w, ps_rank);
      std::int64_t published = 0;

      for (;;) {
        obs::ScopedTimer wait_timer(track, obs::Category::kWait,
                                    "wait_trigger", &comm_times[w].wait);
        auto go = fabric.Recv(w, tags::kGo);
        wait_timer.Stop();
        if (!go.has_value() || go->meta.empty() || go->meta[0] < 0) break;
        const auto round = static_cast<std::size_t>(go->meta[0]);

        // Step LR schedule: every worker decays at the same round.
        for (std::size_t milestone : config.lr_decay_rounds) {
          if (milestone == round) {
            optimizer.DecayLearningRate(config.lr_decay_factor);
          }
        }

        auto drained = stages[w]->Drain();
        const bool contributes = drained.has_value();
        if (contributes) {
          buffer = std::move(drained->grad);
        } else {
          std::fill(buffer.begin(), buffer.end(), 0.0f);
        }

        collectives::PartialResult reduced;
        {
          obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                      "partial_allreduce",
                                      &comm_times[w].comm);
          comm_timer.SetArg("round", static_cast<double>(round));
          reduced = collectives::RingPartialAllreduce(
              fabric, group, my_index, buffer, contributes,
              tags::RingTag(round));
          comm_timer.SetArg("contributors",
                            static_cast<double>(reduced.contributors));
        }
        if (reduced.contributors > 0) {
          const double scale =
              config.lr_policy == LrScalePolicy::kLinear
                  ? static_cast<double>(reduced.contributors) /
                        static_cast<double>(group_size)
                  : 1.0;
          optimizer.Step(params, buffer, scale);
        }

        // Asynchronous cross-group averaging through the PS (§4 phases
        // 2–3): the group leader pushes the group model, pulls back the
        // running average, and broadcasts it within the group.
        if (config.ps_sync_every > 0 && round % config.ps_sync_every == 0) {
          if (my_index == 0) {
            obs::ScopedTimer ps_timer(track, obs::Category::kComm,
                                      "ps_push_pull", &comm_times[w].comm);
            ps_timer.SetArg("round", static_cast<double>(round));
            params = ps_client.PushPull(params, ps::ApplyMode::kAverage);
          }
          obs::ScopedTimer bcast_timer(track, obs::Category::kComm,
                                       "group_broadcast",
                                       &comm_times[w].comm);
          bcast_timer.SetArg("round", static_cast<double>(round));
          collectives::Broadcast(
              fabric, group, my_index, 0, params,
              tags::kGroupRing + static_cast<int>(round % 2));
        }

        if (w == 0) board.Publish(params, ++published);

        net::Message report;
        report.tag = tags::kRoundEnd;
        report.meta = {go->meta[0],
                       contributes ? static_cast<std::int64_t>(drained->count)
                                   : 0};
        fabric.Send(w, my_controller, std::move(report));
      }
      global_stop.store(true);
      final_params[w] = std::move(params);
    });
  }

  // ---- compute threads ----------------------------------------------------
  std::vector<std::thread> compute_threads;
  compute_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    compute_threads.emplace_back([&, w] {
      const net::Rank my_controller = first_controller + group_of[w];
      std::vector<float> params = init;
      std::vector<float> grad(dim);
      std::int64_t seen = 0;
      while (!global_stop.load(std::memory_order_relaxed)) {
        seen = board.ReadIfNewer(seen, &params);
        workers[w]->ComputeGradient(params, grad);
        const bool grew = stages[w]->Write(
            grad, static_cast<std::int64_t>(workers[w]->Iterations()));
        if (grew) {
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, my_controller, std::move(ready));
        }
      }
    });
  }

  // ---- per-group controllers ---------------------------------------------
  std::vector<std::thread> controllers;
  controllers.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    controllers.emplace_back([&, g] {
      const obs::TrackHandle track = obs::RegisterTrack(
          "group" + std::to_string(g) + "/controller");
      const collectives::Group& group = groups[g];
      const net::Rank self = first_controller + g;
      const std::size_t group_size = group.Size();
      common::Rng rng(config.seed + 9101 + 7 * g);
      auto policy = MakeProbePolicy(config.probe_choices);
      std::vector<std::int64_t> ready(group_size, 0);

      auto index_of = [&](net::Rank rank) { return group.IndexOf(rank); };
      auto broadcast_go = [&](std::int64_t round, std::int64_t last) {
        for (std::size_t i = 0; i < group_size; ++i) {
          net::Message go;
          go.tag = tags::kGo;
          go.meta = {round, last};
          fabric.Send(self, group.At(i), std::move(go));
        }
      };

      for (std::size_t round = 0;
           round < config.max_rounds && !global_stop.load(); ++round) {
        policy->BeginRound(group_size, rng);
        {
          obs::ScopedTimer probe_timer(track, obs::Category::kWait,
                                       "probe_wait");
          probe_timer.SetArg("round", static_cast<double>(round));
          while (!stop.load() && !global_stop.load()) {
            while (auto note = fabric.TryRecv(self, tags::kReady)) {
              ++ready[index_of(note->src)];
            }
            if (policy->ShouldTrigger(ready)) break;
            auto note = fabric.RecvFor(self, tags::kReady, 0.002);
            if (note.has_value()) ++ready[index_of(note->src)];
          }
        }
        if (stop.load() || global_stop.load()) break;

        obs::ScopedTimer round_timer(track, obs::Category::kRound, "round");
        round_timer.SetArg("round", static_cast<double>(round));
        broadcast_go(static_cast<std::int64_t>(round), 0);
        const int both[] = {tags::kRoundEnd, tags::kReady};
        std::size_t contributors = 0;
        for (std::size_t reports = 0; reports < group_size;) {
          auto msg = fabric.RecvAny(self, both);
          if (!msg.has_value()) return;
          if (msg->tag == tags::kReady) {
            ++ready[index_of(msg->src)];
            continue;
          }
          ready[index_of(msg->src)] -= msg->meta[1];
          batches_applied.fetch_add(static_cast<std::size_t>(msg->meta[1]));
          if (msg->meta[1] > 0) ++contributors;
          ++reports;
        }
        round_timer.SetArg("contributors", static_cast<double>(contributors));
        obs::ObserveMetric("round.contributors",
                           static_cast<double>(contributors));
        if (g == group_of[0]) {
          obs::CountMetric("round.count");
          round_contributors.push_back(contributors);
          rounds_done.fetch_add(1);
        }
      }
      broadcast_go(-1, 1);
    });
  }

  for (auto& t : controllers) t.join();
  for (auto& t : comm_threads) t.join();
  for (auto& t : compute_threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();
  server.Stop();

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = batches_applied.load();
  for (auto& stage : stages) result.gradients_dropped += stage->Dropped();
  obs::CountMetric("stage.staleness_drops",
                   static_cast<std::int64_t>(result.gradients_dropped));
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.round_contributors = std::move(round_contributors);
  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].wait = comm_times[w].wait;
    result.breakdown[w].comm = comm_times[w].comm;
  }
  result.final_params = final_params[0];
  const nn::BatchResult final_eval = monitor.FullEval(final_params[0]);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), final_params[0], train_data, 2048)
          .loss;
  return result;
}

}  // namespace rna::core::detail
