#include "protocol_impls.hpp"

namespace rna::core::detail {

// Flat RNA (§3): the generic partial-collective engine driven by the
// power-of-q-choices probe trigger. Everything else the paper describes —
// null-gradient participation, W = 1/Σw re-weighting, staleness-weighted
// local accumulation under a bounded-staleness cap, Linear-Scaling-Rule
// learning rates, cross-iteration compute/comm threads — is configured
// through TrainerConfig and implemented in the engine and collectives.
train::TrainResult RunFlatRna(const train::TrainerConfig& config,
                              const train::ModelFactory& factory,
                              const data::Dataset& train_data,
                              const data::Dataset& val_data) {
  const std::size_t choices = config.probe_choices;
  return train::RunPartialCollective(
      config, factory, train_data, val_data,
      [choices] { return MakeProbePolicy(choices); });
}

}  // namespace rna::core::detail
