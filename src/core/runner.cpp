#include <stdexcept>

#include "protocol_impls.hpp"
#include "rna/baselines/baselines.hpp"
#include "rna/common/check.hpp"
#include "rna/core/rna.hpp"

namespace rna::core {

train::TrainResult RunTraining(const train::TrainerConfig& config,
                               const train::ModelFactory& factory,
                               const data::Dataset& train_data,
                               const data::Dataset& val_data) {
  if (std::string why = config.Validate(); !why.empty()) {
    throw std::invalid_argument("invalid TrainerConfig: " + why);
  }
  switch (config.protocol) {
    case train::Protocol::kHorovod:
      return baselines::RunHorovod(config, factory, train_data, val_data);
    case train::Protocol::kEagerSgd:
      return baselines::RunEagerSgd(config, factory, train_data, val_data);
    case train::Protocol::kAdPsgd:
      return baselines::RunAdPsgd(config, factory, train_data, val_data);
    case train::Protocol::kRna:
      return detail::RunFlatRna(config, factory, train_data, val_data);
    case train::Protocol::kRnaHierarchical:
      return detail::RunHierarchicalRna(config, factory, train_data, val_data);
    case train::Protocol::kSgp:
      return baselines::RunSgp(config, factory, train_data, val_data);
    case train::Protocol::kCentralizedPs:
      return baselines::RunCentralizedPs(config, factory, train_data,
                                         val_data);
  }
  RNA_CHECK_MSG(false, "unknown protocol");
  return {};
}

}  // namespace rna::core
