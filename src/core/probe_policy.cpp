#include "rna/common/check.hpp"
#include "rna/core/rna.hpp"

namespace rna::core {

namespace {

class ProbePolicy final : public train::TriggerPolicy {
 public:
  explicit ProbePolicy(std::size_t choices) : choices_(choices) {
    RNA_CHECK_MSG(choices >= 1, "need at least one probe");
  }

  void BeginRound(std::size_t world, common::Rng& rng) override {
    probes_ = rng.SampleWithoutReplacement(world,
                                           std::min(choices_, world));
  }

  bool ShouldTrigger(const train::ReadinessBoard& ready) override {
    // The probe RPC is answered the moment the probed worker has a
    // gradient; the first answer triggers the round and expires the other
    // probes (§3.2). Cost is O(choices), independent of the world size.
    for (std::size_t p : probes_) {
      if (ready.Count(p) > 0) return true;
    }
    return false;
  }

  const char* Name() const override { return "probe"; }

 private:
  std::size_t choices_;
  std::vector<std::size_t> probes_;
};

}  // namespace

std::unique_ptr<train::TriggerPolicy> MakeProbePolicy(std::size_t choices) {
  return std::make_unique<ProbePolicy>(choices);
}

}  // namespace rna::core
