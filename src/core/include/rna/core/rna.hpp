#pragma once

// Public API of RNA — Randomized Non-blocking AllReduce (the paper's
// contribution). There is one front door:
//
//   RunTraining       — validates the config and dispatches to the protocol
//                       it names (RNA variants + the baselines). Throws
//                       std::invalid_argument with the TrainerConfig::
//                       Validate() message for unrunnable configs.
//
// plus two thin conveniences that pin the protocol field and forward:
//
//   RunRna            — flat RNA: power-of-q-choices initiator election +
//                       partial non-blocking ring allreduce (§3).
//   RunHierarchicalRna— RNA inside speed-homogeneous groups, asynchronous
//                       parameter-server averaging across groups (§4).
//
// and the reusable building blocks:
//
//   MakeProbePolicy   — the power-of-q-choices trigger, reusable with the
//                       generic partial-collective engine.
//   ComputeSpeedGroups— the recursive ζ>v grouping rule of §4.
//
// Observability: when an rna::obs::Session (or SetActiveTrace /
// SetActiveMetrics) is installed, every runner dispatched through
// RunTraining records per-thread spans (compute / wait / comm / round
// lifecycle) and named metrics; with nothing installed the instrumentation
// is a no-op. See rna/obs/session.hpp.

#include <memory>
#include <vector>

#include "rna/data/dataset.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"
#include "rna/train/partial_engine.hpp"

namespace rna::core {

/// Power-of-q-choices initiator election (§3.2): at the start of every
/// round the controller samples `choices` distinct workers; the collective
/// fires as soon as any of them has a gradient ready. choices=1 degenerates
/// to purely random initiator selection; choices=2 is the paper's setting.
std::unique_ptr<train::TriggerPolicy> MakeProbePolicy(std::size_t choices);

/// Recursive speed grouping (§4): given per-worker mean iteration times,
/// tests ζ > v (ζ = slowest − fastest, v = mean). If the test fails the set
/// is one group; otherwise workers are split into faster/slower halves
/// around the mean and each half is partitioned recursively. Returns a
/// contiguous group id per worker.
std::vector<std::size_t> ComputeSpeedGroups(const std::vector<double>& times);

/// ComputeSpeedGroups with a hard size cap (the recursive-grouping rule
/// for large worlds): any ζ>v group larger than `max_group_size` is split
/// into near-equal contiguous chunks no larger than the cap, and ids are
/// re-numbered densely. max_group_size == 0 means uncapped.
std::vector<std::size_t> ComputeSpeedGroupsCapped(
    const std::vector<double>& times, std::size_t max_group_size);

/// The single entry point: validates `config` (throws std::invalid_argument
/// with the Validate() message when it is unrunnable) and runs the protocol
/// selected by config.protocol.
train::TrainResult RunTraining(const train::TrainerConfig& config,
                               const train::ModelFactory& factory,
                               const data::Dataset& train_data,
                               const data::Dataset& val_data);

/// Convenience: RunTraining with config.protocol pinned to kRna.
inline train::TrainResult RunRna(const train::TrainerConfig& config,
                                 const train::ModelFactory& factory,
                                 const data::Dataset& train_data,
                                 const data::Dataset& val_data) {
  train::TrainerConfig pinned = config;
  pinned.protocol = train::Protocol::kRna;
  return RunTraining(pinned, factory, train_data, val_data);
}

/// Convenience: RunTraining with config.protocol pinned to kRnaHierarchical.
inline train::TrainResult RunHierarchicalRna(const train::TrainerConfig& config,
                                             const train::ModelFactory& factory,
                                             const data::Dataset& train_data,
                                             const data::Dataset& val_data) {
  train::TrainerConfig pinned = config;
  pinned.protocol = train::Protocol::kRnaHierarchical;
  return RunTraining(pinned, factory, train_data, val_data);
}

}  // namespace rna::core
