#include <algorithm>
#include <functional>
#include <numeric>

#include "rna/common/check.hpp"
#include "rna/core/rna.hpp"

namespace rna::core {

std::vector<std::size_t> ComputeSpeedGroups(const std::vector<double>& times) {
  RNA_CHECK_MSG(!times.empty(), "no workers to group");
  std::vector<std::size_t> group_of(times.size(), 0);
  std::size_t next_group = 0;

  // Recursive partition-and-group (§4): a worker set is homogeneous enough
  // when the fastest-to-slowest spread ζ does not exceed the mean iteration
  // time v; otherwise split around the mean and recurse into both halves.
  std::function<void(std::vector<std::size_t>)> partition =
      [&](std::vector<std::size_t> members) {
        RNA_CHECK(!members.empty());
        double lo = times[members[0]], hi = times[members[0]], sum = 0.0;
        for (std::size_t m : members) {
          lo = std::min(lo, times[m]);
          hi = std::max(hi, times[m]);
          sum += times[m];
        }
        const double mean = sum / static_cast<double>(members.size());
        const double zeta = hi - lo;
        if (zeta <= mean || members.size() == 1) {
          const std::size_t id = next_group++;
          for (std::size_t m : members) group_of[m] = id;
          return;
        }
        std::vector<std::size_t> fast, slow;
        for (std::size_t m : members) {
          (times[m] > mean ? slow : fast).push_back(m);
        }
        // Degenerate split (all on one side of the mean cannot happen when
        // ζ > 0, but guard against pathological float equality).
        if (fast.empty() || slow.empty()) {
          const std::size_t id = next_group++;
          for (std::size_t m : members) group_of[m] = id;
          return;
        }
        partition(std::move(fast));
        partition(std::move(slow));
      };

  std::vector<std::size_t> all(times.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  partition(std::move(all));
  return group_of;
}

std::vector<std::size_t> ComputeSpeedGroupsCapped(
    const std::vector<double>& times, std::size_t max_group_size) {
  std::vector<std::size_t> group_of = ComputeSpeedGroups(times);
  if (max_group_size == 0) return group_of;

  std::size_t num_groups = 0;
  for (std::size_t g : group_of) num_groups = std::max(num_groups, g + 1);
  std::vector<std::vector<std::size_t>> members(num_groups);
  for (std::size_t w = 0; w < group_of.size(); ++w) {
    members[group_of[w]].push_back(w);
  }

  // Oversized ζ>v groups are speed-homogeneous by construction, so a
  // balanced chunking (sizes differ by at most one, never above the cap)
  // preserves the grouping invariant while bounding every ring.
  std::size_t next = 0;
  for (const auto& m : members) {
    const std::size_t n = m.size();
    const std::size_t chunks = (n + max_group_size - 1) / max_group_size;
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::size_t i = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t len = base + (c < extra ? 1 : 0);
      const std::size_t id = next++;
      for (std::size_t k = 0; k < len; ++k) group_of[m[i++]] = id;
    }
  }
  return group_of;
}

}  // namespace rna::core
