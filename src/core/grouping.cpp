#include <algorithm>
#include <functional>
#include <numeric>

#include "rna/common/check.hpp"
#include "rna/core/rna.hpp"

namespace rna::core {

std::vector<std::size_t> ComputeSpeedGroups(const std::vector<double>& times) {
  RNA_CHECK_MSG(!times.empty(), "no workers to group");
  std::vector<std::size_t> group_of(times.size(), 0);
  std::size_t next_group = 0;

  // Recursive partition-and-group (§4): a worker set is homogeneous enough
  // when the fastest-to-slowest spread ζ does not exceed the mean iteration
  // time v; otherwise split around the mean and recurse into both halves.
  std::function<void(std::vector<std::size_t>)> partition =
      [&](std::vector<std::size_t> members) {
        RNA_CHECK(!members.empty());
        double lo = times[members[0]], hi = times[members[0]], sum = 0.0;
        for (std::size_t m : members) {
          lo = std::min(lo, times[m]);
          hi = std::max(hi, times[m]);
          sum += times[m];
        }
        const double mean = sum / static_cast<double>(members.size());
        const double zeta = hi - lo;
        if (zeta <= mean || members.size() == 1) {
          const std::size_t id = next_group++;
          for (std::size_t m : members) group_of[m] = id;
          return;
        }
        std::vector<std::size_t> fast, slow;
        for (std::size_t m : members) {
          (times[m] > mean ? slow : fast).push_back(m);
        }
        // Degenerate split (all on one side of the mean cannot happen when
        // ζ > 0, but guard against pathological float equality).
        if (fast.empty() || slow.empty()) {
          const std::size_t id = next_group++;
          for (std::size_t m : members) group_of[m] = id;
          return;
        }
        partition(std::move(fast));
        partition(std::move(slow));
      };

  std::vector<std::size_t> all(times.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  partition(std::move(all));
  return group_of;
}

}  // namespace rna::core
