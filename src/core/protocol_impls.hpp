#pragma once

// Private protocol implementations behind the single public entry point
// (core::RunTraining). Not installed with the public headers: everything a
// downstream user needs goes through rna/core/rna.hpp.

#include "rna/core/rna.hpp"

namespace rna::core::detail {

/// Flat RNA (§3): probe-triggered partial non-blocking ring allreduce.
train::TrainResult RunFlatRna(const train::TrainerConfig& config,
                              const train::ModelFactory& factory,
                              const data::Dataset& train_data,
                              const data::Dataset& val_data);

/// Hierarchical RNA (§4): speed groups + asynchronous PS averaging.
train::TrainResult RunHierarchicalRna(const train::TrainerConfig& config,
                                      const train::ModelFactory& factory,
                                      const data::Dataset& train_data,
                                      const data::Dataset& val_data);

}  // namespace rna::core::detail
