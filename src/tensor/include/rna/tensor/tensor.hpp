#pragma once

// A minimal dense float tensor: contiguous row-major storage with an inline
// shape (max rank 4 — nothing in the models needs more). This is the data
// type flowing through the from-scratch neural network library and,
// flattened, through the collectives.
//
// Storage comes from the thread's active Arena when one is in scope (see
// arena.hpp) and from the heap otherwise. The shape itself never heap-
// allocates, so constructing a Tensor under an arena scope performs zero
// heap allocations — the property the steady-state training test enforces.
//
// Lifetime rules for arena-backed tensors:
//   * A tensor allocated under a StepScope must not be read after the
//     scope's ResetScratch() — its storage is bump-reused next step. Layer
//     caches obey this because every Forward rewrites them before use.
//   * Copy construction/assignment while an arena is active always takes
//     fresh arena storage (never reuses in place), so a stale destination
//     can never alias live data.
//   * The destructor never touches arena storage; destroying an arena-backed
//     tensor after its arena reset (or death) is safe.

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>

#include "rna/common/check.hpp"
#include "rna/tensor/arena.hpp"

namespace rna::tensor {

/// Inline tensor shape: up to kMaxRank dimensions, no heap storage.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : rank_(dims.size()) {
    RNA_CHECK_MSG(dims.size() <= kMaxRank, "tensor rank exceeds kMaxRank");
    std::size_t i = 0;
    for (std::size_t d : dims) dims_[i++] = d;
  }

  std::size_t Rank() const { return rank_; }
  std::size_t operator[](std::size_t i) const { return dims_[i]; }

  /// Total element count; a rank-0 shape is empty.
  std::size_t Elements() const {
    if (rank_ == 0) return 0;
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  const std::size_t* begin() const { return dims_.data(); }
  const std::size_t* end() const { return dims_.data() + rank_; }

  // Unused slots are always zero, so member-wise comparison is exact.
  bool operator==(const Shape&) const = default;

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Storage comes from the
  /// thread's active arena (short-lived) or the heap when no arena is set.
  explicit Tensor(tensor::Shape shape);

  /// Arena-aware constructor with an explicit lifetime: kLong storage
  /// survives ResetScratch — for scratch reused across steps.
  Tensor(tensor::Shape shape, Lifetime lifetime);

  /// Builds a tensor from existing data; data.size() must match the shape.
  Tensor(tensor::Shape shape, std::span<const float> data);
  Tensor(tensor::Shape shape, std::initializer_list<float> data)
      : Tensor(shape, std::span<const float>(data.begin(), data.size())) {}

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  const tensor::Shape& Shape() const { return shape_; }
  std::size_t Rank() const { return shape_.Rank(); }
  std::size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// True when the storage lives in an arena (tests use this to pin the
  /// allocation-routing contract).
  bool ArenaBacked() const { return arena_backed_; }

  /// Dimensions for the common 2-D (rows × cols) case. A rank-1 tensor is
  /// treated as a single row.
  std::size_t Rows() const;
  std::size_t Cols() const;

  float* Data() { return data_; }
  const float* Data() const { return data_; }
  std::span<float> Flat() { return {data_, size_}; }
  std::span<const float> Flat() const { return {data_, size_}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D element access with bounds checking.
  float& At(std::size_t r, std::size_t c);
  float At(std::size_t r, std::size_t c) const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  /// Reshape preserving the element count.
  void Reshape(tensor::Shape shape);

  /// Sum of all elements / squared L2 norm — used by tests and invariants.
  double Sum() const;
  double SquaredNorm() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const;

 private:
  void AllocateStorage(std::size_t n, Lifetime lifetime, bool zero);
  void Release();

  tensor::Shape shape_;
  float* data_ = nullptr;
  std::size_t size_ = 0;
  bool arena_backed_ = false;
  std::unique_ptr<float[]> owned_;  // engaged iff heap-backed and non-empty
};

}  // namespace rna::tensor
