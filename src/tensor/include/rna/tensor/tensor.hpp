#pragma once

// A minimal dense float tensor: contiguous row-major storage with a dynamic
// shape. This is the data type flowing through the from-scratch neural
// network library and, flattened, through the collectives.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace rna::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  /// Builds a tensor from existing data; data.size() must match the shape.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  const std::vector<std::size_t>& Shape() const { return shape_; }
  std::size_t Rank() const { return shape_.size(); }
  std::size_t Size() const { return data_.size(); }
  bool Empty() const { return data_.empty(); }

  /// Dimensions for the common 2-D (rows × cols) case. A rank-1 tensor is
  /// treated as a single row.
  std::size_t Rows() const;
  std::size_t Cols() const;

  float* Data() { return data_.data(); }
  const float* Data() const { return data_.data(); }
  std::span<float> Flat() { return data_; }
  std::span<const float> Flat() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D element access with bounds checking in debug builds.
  float& At(std::size_t r, std::size_t c);
  float At(std::size_t r, std::size_t c) const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  /// Reshape preserving the element count.
  void Reshape(std::vector<std::size_t> shape);

  /// Sum of all elements / squared L2 norm — used by tests and invariants.
  double Sum() const;
  double SquaredNorm() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace rna::tensor
