#pragma once

// BLAS-free dense kernels. The three matmul variants cover exactly what
// backpropagation needs:
//   forward      Y  = X · W        (MatMul)
//   input grad   dX = dY · Wᵀ      (MatMulNT)
//   weight grad  dW = Xᵀ · dY      (MatMulTN)
// plus elementwise vector kernels used by optimizers and collectives.

#include <span>

#include "rna/tensor/tensor.hpp"

namespace rna::tensor {

/// C = alpha · A(m×k) · B(k×n) + beta · C(m×n).
void MatMul(const Tensor& a, const Tensor& b, Tensor& c, float alpha = 1.0f,
            float beta = 0.0f);

/// C = alpha · A(m×k) · Bᵀ(n×k) + beta · C(m×n).
void MatMulNT(const Tensor& a, const Tensor& b, Tensor& c, float alpha = 1.0f,
              float beta = 0.0f);

/// C = alpha · Aᵀ(k×m) · B(k×n) + beta · C(m×n).
void MatMulTN(const Tensor& a, const Tensor& b, Tensor& c, float alpha = 1.0f,
              float beta = 0.0f);

// ---- elementwise / vector kernels on flat spans ----

/// y += alpha * x
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void Scale(std::span<float> x, float alpha);

/// out = a + b
void Add(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/// out = a ⊙ b (elementwise product)
void Hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

double Dot(std::span<const float> a, std::span<const float> b);

/// Adds `row` (length = cols) to every row of the 2-D tensor.
void AddRowBroadcast(Tensor& matrix, std::span<const float> row);

/// Column-wise sum of a 2-D tensor into `out` (length = cols).
void SumRows(const Tensor& matrix, std::span<float> out);

/// In-place row-wise softmax of a 2-D tensor.
void SoftmaxRows(Tensor& logits);

}  // namespace rna::tensor
