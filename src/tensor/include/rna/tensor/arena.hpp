#pragma once

// Per-worker compute arena backing Tensor storage (ROADMAP item 2, after
// Marian's TensorAllocator/reserveExact). Two bump-allocated regions:
//
//   kShort — per-step scratch (activations, per-op temporaries). Freed in
//            O(1) by ResetScratch() at the end of every training step.
//   kLong  — state that survives steps (persistent layer scratch, optimizer
//            state). Never reset for the arena's lifetime.
//
// Chunks grow on demand so variable-length sequences cannot OOM; after the
// first step the high-water mark is reached and steady-state iterations
// perform zero heap allocations (ctest-gated by tests/test_arena.cpp).
// ReserveExact() consolidates the short region into one exactly-sized chunk
// and flips the arena into exact mode, where any growth beyond the reserved
// capacity throws std::bad_alloc — the capacity-planning contract.
//
// The arena is single-owner: one Network (worker replica) per arena, no
// internal locking. Cross-thread use is per-thread-arena by construction;
// the race-stress suite locks this in under TSan.

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace rna::tensor {

enum class Lifetime {
  kShort,  ///< per-step scratch, freed by ResetScratch()
  kLong,   ///< lives until the arena dies
};

struct ArenaStats {
  std::size_t chunk_allocs = 0;      ///< heap chunk allocations (growth events)
  std::size_t reserved_bytes = 0;    ///< total chunk capacity, both regions
  std::size_t short_in_use = 0;      ///< bytes currently bump-allocated (short)
  std::size_t short_high_water = 0;  ///< max short_in_use ever observed
  std::size_t long_in_use = 0;       ///< bytes allocated long-term
  std::size_t short_allocs = 0;      ///< Allocate(kShort) calls
  std::size_t long_allocs = 0;       ///< Allocate(kLong) calls
  std::size_t resets = 0;            ///< ResetScratch() calls
};

class Arena {
 public:
  static constexpr std::size_t kAlignment = 64;       // cache line
  static constexpr std::size_t kMinChunkBytes = 1 << 20;

  Arena() = default;
  /// Pre-reserves one short-region chunk of at least `initial_bytes`
  /// (rounded up to kAlignment); the arena stays in grow-on-demand mode.
  explicit Arena(std::size_t initial_bytes);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `elems` floats, 64-byte aligned, NOT zeroed. Returns
  /// nullptr for elems == 0. Grows by a new chunk when the region is full;
  /// in exact mode a short-region growth throws std::bad_alloc instead.
  float* Allocate(std::size_t elems, Lifetime lifetime = Lifetime::kShort);

  /// O(1) release of every short-lived allocation. Pointers handed out from
  /// the short region are invalid afterwards (Tensor copy semantics in
  /// tensor.hpp are designed so no live Tensor reuses them).
  void ResetScratch();

  /// Consolidates the short region into a single chunk of exactly
  /// `short_bytes` (rounded up to kAlignment) and enters exact mode: any
  /// short-region allocation beyond this capacity throws std::bad_alloc.
  /// Requires no live short allocations (call after ResetScratch()).
  void ReserveExact(std::size_t short_bytes);

  /// ReserveExact at the observed high-water mark — the capacity-planning
  /// idiom: run one step in grow mode, reset, then pin the capacity.
  void ReserveExact() { ReserveExact(stats_.short_high_water); }

  /// Leaves exact mode: the short region may grow on demand again. The
  /// reserved chunk is kept. Used when a pinned training replica is
  /// repurposed for work with a different footprint (e.g. the terminal
  /// full-dataset evaluation, whose slices dwarf a training batch).
  void Relax() { exact_ = false; }

  bool ExactMode() const { return exact_; }
  const ArenaStats& Stats() const { return stats_; }

  /// The thread's active arena (nullptr when none). Tensor allocations go
  /// through this hook; see Scope below.
  static Arena* Current();

  /// RAII activation: makes this arena Current() on the calling thread for
  /// the scope's lifetime, restoring the previous one on exit.
  class Scope {
   public:
    explicit Scope(Arena& arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena* previous_;
  };

  /// Scope + ResetScratch() on exit: wraps exactly one compute step.
  class StepScope {
   public:
    explicit StepScope(Arena& arena) : arena_(arena), scope_(arena) {}
    ~StepScope() { arena_.ResetScratch(); }
    StepScope(const StepScope&) = delete;
    StepScope& operator=(const StepScope&) = delete;

   private:
    Arena& arena_;
    Scope scope_;
  };

 private:
  struct ChunkDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  using ChunkPtr = std::unique_ptr<std::byte[], ChunkDelete>;

  struct Chunk {
    ChunkPtr data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  /// A chain of chunks filled front to back; `cursor` indexes the chunk
  /// currently being filled.
  struct Region {
    std::vector<Chunk> chunks;
    std::size_t cursor = 0;
  };

  Chunk NewChunk(std::size_t capacity);
  float* AllocateFrom(Region& region, std::size_t bytes, bool allow_growth);

  Region short_;
  Region long_;
  bool exact_ = false;
  ArenaStats stats_;
};

}  // namespace rna::tensor
