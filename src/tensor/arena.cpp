#include "rna/tensor/arena.hpp"

#include "rna/common/check.hpp"

namespace rna::tensor {

namespace {

thread_local Arena* t_current_arena = nullptr;

std::size_t RoundUp(std::size_t bytes) {
  return (bytes + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

}  // namespace

Arena* Arena::Current() { return t_current_arena; }

Arena::Scope::Scope(Arena& arena) : previous_(t_current_arena) {
  t_current_arena = &arena;
}

Arena::Scope::~Scope() { t_current_arena = previous_; }

Arena::Arena(std::size_t initial_bytes) {
  if (initial_bytes > 0) {
    short_.chunks.push_back(NewChunk(RoundUp(initial_bytes)));
  }
}

Arena::Chunk Arena::NewChunk(std::size_t capacity) {
  Chunk chunk;
  chunk.data.reset(static_cast<std::byte*>(
      ::operator new[](capacity, std::align_val_t{kAlignment})));
  chunk.capacity = capacity;
  ++stats_.chunk_allocs;
  stats_.reserved_bytes += capacity;
  return chunk;
}

float* Arena::AllocateFrom(Region& region, std::size_t bytes,
                           bool allow_growth) {
  for (; region.cursor < region.chunks.size(); ++region.cursor) {
    Chunk& chunk = region.chunks[region.cursor];
    if (chunk.capacity - chunk.used >= bytes) {
      float* out = reinterpret_cast<float*>(chunk.data.get() + chunk.used);
      chunk.used += bytes;
      return out;
    }
  }
  if (!allow_growth) throw std::bad_alloc();
  region.chunks.push_back(
      NewChunk(bytes > kMinChunkBytes ? bytes : kMinChunkBytes));
  region.cursor = region.chunks.size() - 1;
  Chunk& chunk = region.chunks.back();
  chunk.used = bytes;
  return reinterpret_cast<float*>(chunk.data.get());
}

float* Arena::Allocate(std::size_t elems, Lifetime lifetime) {
  if (elems == 0) return nullptr;
  const std::size_t bytes = RoundUp(elems * sizeof(float));
  if (lifetime == Lifetime::kShort) {
    // In exact mode the short region is capacity-planned: growth is an OOM.
    float* out = AllocateFrom(short_, bytes, /*allow_growth=*/!exact_);
    ++stats_.short_allocs;
    stats_.short_in_use += bytes;
    if (stats_.short_in_use > stats_.short_high_water) {
      stats_.short_high_water = stats_.short_in_use;
    }
    return out;
  }
  float* out = AllocateFrom(long_, bytes, /*allow_growth=*/true);
  ++stats_.long_allocs;
  stats_.long_in_use += bytes;
  return out;
}

void Arena::ResetScratch() {
  for (Chunk& chunk : short_.chunks) chunk.used = 0;
  short_.cursor = 0;
  stats_.short_in_use = 0;
  ++stats_.resets;
}

void Arena::ReserveExact(std::size_t short_bytes) {
  RNA_CHECK_MSG(stats_.short_in_use == 0,
                "ReserveExact requires no live scratch (call ResetScratch)");
  for (const Chunk& chunk : short_.chunks) {
    stats_.reserved_bytes -= chunk.capacity;
  }
  short_.chunks.clear();
  short_.cursor = 0;
  if (short_bytes > 0) {
    short_.chunks.push_back(NewChunk(RoundUp(short_bytes)));
  }
  exact_ = true;
}

}  // namespace rna::tensor
