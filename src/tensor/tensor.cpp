#include "rna/tensor/tensor.hpp"

#include <numeric>
#include <sstream>

#include "rna/common/check.hpp"

namespace rna::tensor {

namespace {

std::size_t ElementCount(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(ElementCount(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  RNA_CHECK_MSG(data_.size() == ElementCount(shape_),
                "data size does not match shape");
}

std::size_t Tensor::Rows() const {
  if (shape_.empty()) return 0;
  if (shape_.size() == 1) return 1;
  return shape_[0];
}

std::size_t Tensor::Cols() const {
  if (shape_.empty()) return 0;
  if (shape_.size() == 1) return shape_[0];
  // Collapse trailing dimensions: (d0, d1, ..., dn) -> d0 × (d1·...·dn).
  std::size_t c = 1;
  for (std::size_t i = 1; i < shape_.size(); ++i) c *= shape_[i];
  return c;
}

float& Tensor::At(std::size_t r, std::size_t c) {
  RNA_CHECK(r < Rows() && c < Cols());
  return data_[r * Cols() + c];
}

float Tensor::At(std::size_t r, std::size_t c) const {
  RNA_CHECK(r < Rows() && c < Cols());
  return data_[r * Cols() + c];
}

void Tensor::Fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::Reshape(std::vector<std::size_t> shape) {
  RNA_CHECK_MSG(ElementCount(shape) == data_.size(),
                "reshape must preserve element count");
  shape_ = std::move(shape);
}

double Tensor::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::SquaredNorm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return s;
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << ")";
  return out.str();
}

}  // namespace rna::tensor
