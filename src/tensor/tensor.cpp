#include "rna/tensor/tensor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace rna::tensor {

void Tensor::AllocateStorage(std::size_t n, Lifetime lifetime, bool zero) {
  size_ = n;
  if (n == 0) {
    data_ = nullptr;
    return;
  }
  if (Arena* arena = Arena::Current()) {
    arena_backed_ = true;
    data_ = arena->Allocate(n, lifetime);
  } else {
    owned_.reset(new float[n]);
    data_ = owned_.get();
  }
  if (zero) std::memset(data_, 0, n * sizeof(float));
}

void Tensor::Release() {
  owned_.reset();
  data_ = nullptr;
  size_ = 0;
  arena_backed_ = false;
}

Tensor::Tensor(tensor::Shape shape) : shape_(shape) {
  AllocateStorage(shape_.Elements(), Lifetime::kShort, /*zero=*/true);
}

Tensor::Tensor(tensor::Shape shape, Lifetime lifetime) : shape_(shape) {
  AllocateStorage(shape_.Elements(), lifetime, /*zero=*/true);
}

Tensor::Tensor(tensor::Shape shape, std::span<const float> data)
    : shape_(shape) {
  RNA_CHECK_MSG(data.size() == shape_.Elements(),
                "data size does not match shape");
  AllocateStorage(shape_.Elements(), Lifetime::kShort, /*zero=*/false);
  if (size_ > 0) std::memcpy(data_, data.data(), size_ * sizeof(float));
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  AllocateStorage(other.size_, Lifetime::kShort, /*zero=*/false);
  if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  // Reuse in place only when this tensor owns matching heap storage and no
  // arena is active; an arena-backed destination may hold a stale pointer
  // from before a ResetScratch, so it always takes fresh storage.
  const bool reuse = owned_ != nullptr && size_ == other.size_ &&
                     Arena::Current() == nullptr;
  if (!reuse) {
    Release();
    AllocateStorage(other.size_, Lifetime::kShort, /*zero=*/false);
  }
  if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(float));
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_),
      data_(other.data_),
      size_(other.size_),
      arena_backed_(other.arena_backed_),
      owned_(std::move(other.owned_)) {
  other.shape_ = tensor::Shape();
  other.data_ = nullptr;
  other.size_ = 0;
  other.arena_backed_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = other.shape_;
  owned_ = std::move(other.owned_);
  data_ = other.data_;
  size_ = other.size_;
  arena_backed_ = other.arena_backed_;
  other.shape_ = tensor::Shape();
  other.data_ = nullptr;
  other.size_ = 0;
  other.arena_backed_ = false;
  return *this;
}

std::size_t Tensor::Rows() const {
  if (shape_.Rank() == 0) return 0;
  if (shape_.Rank() == 1) return 1;
  return shape_[0];
}

std::size_t Tensor::Cols() const {
  if (shape_.Rank() == 0) return 0;
  if (shape_.Rank() == 1) return shape_[0];
  // Collapse trailing dimensions: (d0, d1, ..., dn) -> d0 × (d1·...·dn).
  std::size_t c = 1;
  for (std::size_t i = 1; i < shape_.Rank(); ++i) c *= shape_[i];
  return c;
}

float& Tensor::At(std::size_t r, std::size_t c) {
  RNA_CHECK(r < Rows() && c < Cols());
  return data_[r * Cols() + c];
}

float Tensor::At(std::size_t r, std::size_t c) const {
  RNA_CHECK(r < Rows() && c < Cols());
  return data_[r * Cols() + c];
}

void Tensor::Fill(float value) { std::fill(data_, data_ + size_, value); }

void Tensor::Reshape(tensor::Shape shape) {
  RNA_CHECK_MSG(shape.Elements() == size_,
                "reshape must preserve element count");
  shape_ = shape;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size_; ++i) s += data_[i];
  return s;
}

double Tensor::SquaredNorm() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size_; ++i) {
    s += static_cast<double>(data_[i]) * data_[i];
  }
  return s;
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "(";
  for (std::size_t i = 0; i < shape_.Rank(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << ")";
  return out.str();
}

}  // namespace rna::tensor
