#include "rna/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"

namespace rna::tensor {

namespace {

void CheckMatMulShapes(std::size_t am, std::size_t ak, std::size_t bk,
                       std::size_t bn, const Tensor& c) {
  RNA_CHECK_MSG(ak == bk, "inner dimensions must match");
  RNA_CHECK_MSG(c.Rows() == am && c.Cols() == bn,
                "output shape does not match");
}

}  // namespace

void MatMul(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
            float beta) {
  const std::size_t m = a.Rows(), k = a.Cols(), n = b.Cols();
  CheckMatMulShapes(m, k, b.Rows(), n, c);
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* pc = c.Data();
  // i-k-j loop order keeps B and C accesses sequential.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = pa + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = alpha * arow[kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulNT(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
              float beta) {
  // C(m×n) = A(m×k) · Bᵀ, where B is stored n×k.
  const std::size_t m = a.Rows(), k = a.Cols(), n = b.Rows();
  RNA_CHECK_MSG(b.Cols() == k, "inner dimensions must match");
  RNA_CHECK_MSG(c.Rows() == m && c.Cols() == n, "output shape does not match");
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* pc = c.Data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += double(arow[kk]) * brow[kk];
      crow[j] = alpha * static_cast<float>(acc) +
                (beta == 0.0f ? 0.0f : beta * crow[j]);
    }
  }
}

void MatMulTN(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
              float beta) {
  // C(m×n) = Aᵀ · B, where A is stored k×m and B is stored k×n.
  const std::size_t k = a.Rows(), m = a.Cols(), n = b.Cols();
  RNA_CHECK_MSG(b.Rows() == k, "inner dimensions must match");
  RNA_CHECK_MSG(c.Rows() == m && c.Cols() == n, "output shape does not match");
  const float* pa = a.Data();
  const float* pb = b.Data();
  float* pc = c.Data();
  if (beta == 0.0f) {
    c.Zero();
  } else if (beta != 1.0f) {
    for (auto& x : c.Flat()) x *= beta;
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  RNA_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(std::span<float> x, float alpha) {
  for (auto& v : x) v *= alpha;
}

void Add(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  RNA_CHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void Hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  RNA_CHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

double Dot(std::span<const float> a, std::span<const float> b) {
  RNA_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

void AddRowBroadcast(Tensor& matrix, std::span<const float> row) {
  RNA_CHECK(matrix.Cols() == row.size());
  const std::size_t rows = matrix.Rows(), cols = matrix.Cols();
  float* p = matrix.Data();
  for (std::size_t i = 0; i < rows; ++i) {
    float* mrow = p + i * cols;
    for (std::size_t j = 0; j < cols; ++j) mrow[j] += row[j];
  }
}

void SumRows(const Tensor& matrix, std::span<float> out) {
  RNA_CHECK(matrix.Cols() == out.size());
  std::fill(out.begin(), out.end(), 0.0f);
  const std::size_t rows = matrix.Rows(), cols = matrix.Cols();
  const float* p = matrix.Data();
  for (std::size_t i = 0; i < rows; ++i) {
    const float* mrow = p + i * cols;
    for (std::size_t j = 0; j < cols; ++j) out[j] += mrow[j];
  }
}

void SoftmaxRows(Tensor& logits) {
  const std::size_t rows = logits.Rows(), cols = logits.Cols();
  float* p = logits.Data();
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = p + i * cols;
    float peak = row[0];
    for (std::size_t j = 1; j < cols; ++j) peak = std::max(peak, row[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - peak);
      sum += row[j];
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

}  // namespace rna::tensor
