#include "rna/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"

namespace rna::tensor {

namespace {

void CheckMatMulShapes(std::size_t am, std::size_t ak, std::size_t bk,
                       std::size_t bn, const Tensor& c) {
  RNA_CHECK_MSG(ak == bk, "inner dimensions must match");
  RNA_CHECK_MSG(c.Rows() == am && c.Cols() == bn,
                "output shape does not match");
}

}  // namespace

// The three matmuls check shapes and delegate to the dispatching blocked
// kernels in rna/common/simd.hpp (scalar reference under Dispatch::kScalar).

void MatMul(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
            float beta) {
  const std::size_t m = a.Rows(), k = a.Cols(), n = b.Cols();
  CheckMatMulShapes(m, k, b.Rows(), n, c);
  common::simd::MatMulNN(a.Data(), b.Data(), c.Data(), m, k, n, alpha, beta);
}

void MatMulNT(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
              float beta) {
  // C(m×n) = A(m×k) · Bᵀ, where B is stored n×k.
  const std::size_t m = a.Rows(), k = a.Cols(), n = b.Rows();
  RNA_CHECK_MSG(b.Cols() == k, "inner dimensions must match");
  RNA_CHECK_MSG(c.Rows() == m && c.Cols() == n, "output shape does not match");
  common::simd::MatMulNT(a.Data(), b.Data(), c.Data(), m, k, n, alpha, beta);
}

void MatMulTN(const Tensor& a, const Tensor& b, Tensor& c, float alpha,
              float beta) {
  // C(m×n) = Aᵀ · B, where A is stored k×m and B is stored k×n.
  const std::size_t k = a.Rows(), m = a.Cols(), n = b.Cols();
  RNA_CHECK_MSG(b.Rows() == k, "inner dimensions must match");
  RNA_CHECK_MSG(c.Rows() == m && c.Cols() == n, "output shape does not match");
  common::simd::MatMulTN(a.Data(), b.Data(), c.Data(), m, k, n, alpha, beta);
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  RNA_CHECK(x.size() == y.size());
  common::simd::WeightedAccumulate(y, x, alpha);
}

void Scale(std::span<float> x, float alpha) {
  common::simd::ScaleInto(x, alpha);
}

void Add(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  RNA_CHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void Hadamard(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  RNA_CHECK(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

double Dot(std::span<const float> a, std::span<const float> b) {
  RNA_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

void AddRowBroadcast(Tensor& matrix, std::span<const float> row) {
  RNA_CHECK(matrix.Cols() == row.size());
  const std::size_t rows = matrix.Rows(), cols = matrix.Cols();
  float* p = matrix.Data();
  for (std::size_t i = 0; i < rows; ++i) {
    float* mrow = p + i * cols;
    for (std::size_t j = 0; j < cols; ++j) mrow[j] += row[j];
  }
}

void SumRows(const Tensor& matrix, std::span<float> out) {
  RNA_CHECK(matrix.Cols() == out.size());
  std::fill(out.begin(), out.end(), 0.0f);
  const std::size_t rows = matrix.Rows(), cols = matrix.Cols();
  const float* p = matrix.Data();
  for (std::size_t i = 0; i < rows; ++i) {
    const float* mrow = p + i * cols;
    for (std::size_t j = 0; j < cols; ++j) out[j] += mrow[j];
  }
}

void SoftmaxRows(Tensor& logits) {
  const std::size_t rows = logits.Rows(), cols = logits.Cols();
  float* p = logits.Data();
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = p + i * cols;
    float peak = row[0];
    for (std::size_t j = 1; j < cols; ++j) peak = std::max(peak, row[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - peak);
      sum += row[j];
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (std::size_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

}  // namespace rna::tensor
