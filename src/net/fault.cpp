#include "rna/net/fault.hpp"

#include <algorithm>

#include "rna/common/rng.hpp"

namespace rna::net {

namespace {

// One SplitMix64 absorption step: mixes `v` into the running hash `h`.
std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  common::SplitMix64 sm(h ^ (v + 0x9e3779b97f4a7c15ULL));
  return sm.Next();
}

std::uint64_t StreamKey(Rank from, Rank to, int tag) {
  // Ranks in this repo are < 2^14 (worlds of at most a few hundred); tags
  // fit in 32 bits. Pack (from, to, tag) so one word identifies a stream.
  return (static_cast<std::uint64_t>(from) << 50) ^
         (static_cast<std::uint64_t>(to) << 36) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
}

}  // namespace

double FaultPlan::HashUniform(Rank from, Rank to, int tag, std::uint64_t seq,
                              std::uint64_t salt) const {
  std::uint64_t h = Mix(seed_, salt);
  h = Mix(h, static_cast<std::uint64_t>(from));
  h = Mix(h, static_cast<std::uint64_t>(to));
  h = Mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = Mix(h, seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultDecision FaultPlan::Decide(Rank from, Rank to, int tag) {
  const std::uint64_t key = StreamKey(from, to, tag);
  std::uint64_t seq = 0;
  {
    common::MutexLock lock(mu_);
    ++counters_.examined;
    auto it = std::find_if(seqs_.begin(), seqs_.end(),
                           [&](const auto& kv) { return kv.first == key; });
    if (it == seqs_.end()) {
      seqs_.emplace_back(key, 1);  // this message is seq 0
    } else {
      seq = it->second++;
    }
  }

  FaultDecision decision;
  for (const FaultRule& rule : rules_) {
    if (!rule.Matches(from, to, tag, seq)) continue;
    // Salts keep the three draws independent of each other.
    if (rule.drop_prob > 0.0 &&
        HashUniform(from, to, tag, seq, 0xD20Full) < rule.drop_prob) {
      decision.drop = true;
    }
    if (rule.dup_prob > 0.0 &&
        HashUniform(from, to, tag, seq, 0xD0B1Eull) < rule.dup_prob) {
      decision.duplicate = true;
    }
    if (rule.delay_prob > 0.0 &&
        HashUniform(from, to, tag, seq, 0xDE1A4ull) < rule.delay_prob) {
      decision.extra_delay = rule.delay_s;
    }
    break;  // first matching rule wins
  }

  if (decision.drop || decision.duplicate || decision.extra_delay > 0.0) {
    common::MutexLock lock(mu_);
    if (decision.drop) ++counters_.dropped;
    if (decision.duplicate) ++counters_.duplicated;
    if (decision.extra_delay > 0.0) ++counters_.delayed;
  }
  return decision;
}

FaultCounters FaultPlan::Totals() const {
  common::MutexLock lock(mu_);
  return counters_;
}

}  // namespace rna::net
