#include "rna/net/buffer_pool.hpp"

#include "rna/obs/metrics.hpp"

namespace rna::net {

BufferPool::BufferPool(std::size_t max_buffers)
    : max_buffers_(max_buffers == 0 ? 1 : max_buffers) {}

std::vector<float> BufferPool::Acquire(std::size_t n) {
  // Zero-length payloads (empty ring chunks when world > data.size()) need
  // no storage: hand out a fresh empty vector and leave the freelist and
  // the hit/miss accounting alone.
  if (n == 0) return {};
  std::vector<float> buffer;
  {
    common::MutexLock lock(mu_);
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
    }
  }
  const bool hit = buffer.capacity() >= n && n > 0;
  // resize() never reallocates when capacity suffices; a recycled buffer
  // smaller than the request grows in place of a fresh allocation, which
  // still saves the copy-out but counts as a miss.
  buffer.resize(n);
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_reused_.fetch_add(n * sizeof(float), std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return buffer;
}

void BufferPool::Recycle(std::vector<float>&& buffer) {
  if (buffer.capacity() == 0) return;  // nothing worth keeping
  {
    common::MutexLock lock(mu_);
    if (free_.size() < max_buffers_) {
      free_.push_back(std::move(buffer));
      recycled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  discarded_.fetch_add(1, std::memory_order_relaxed);
  // `buffer` frees here, outside the lock.
}

BufferPool::Stats BufferPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.recycled = recycled_.load(std::memory_order_relaxed);
  s.discarded = discarded_.load(std::memory_order_relaxed);
  s.bytes_reused = bytes_reused_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::PublishMetrics() {
  auto flush = [](std::atomic<std::uint64_t>& current,
                  std::atomic<std::uint64_t>& published, const char* name) {
    const std::uint64_t now = current.load(std::memory_order_relaxed);
    const std::uint64_t prev =
        published.exchange(now, std::memory_order_relaxed);
    if (now > prev) {
      obs::CountMetric(name, static_cast<std::int64_t>(now - prev));
    }
  };
  flush(hits_, published_hits_, "fabric.pool.hits");
  flush(misses_, published_misses_, "fabric.pool.misses");
  flush(recycled_, published_recycled_, "fabric.pool.recycled");
  flush(bytes_reused_, published_bytes_, "fabric.pool.bytes_reused");
  obs::SetGauge("fabric.pool.hit_rate", GetStats().HitRate());
}

}  // namespace rna::net
