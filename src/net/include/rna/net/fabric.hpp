#pragma once

// An in-process message fabric: N endpoints, each with a tag-addressed
// mailbox supporting blocking, timed, and multi-tag receives. This is the
// repo's substitute for MPI point-to-point transport (see DESIGN.md); all
// collectives, the parameter server, the RNA controller RPCs and the
// AD-PSGD gossip run on top of it.
//
// An optional latency model delays deliveries on a dedicated timer thread,
// letting experiments inject network heterogeneity without touching
// protocol code.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include <atomic>

#include "rna/common/clock.hpp"
#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"
#include "rna/net/buffer_pool.hpp"
#include "rna/net/message.hpp"
#include "rna/net/wire.hpp"

namespace rna::net {

class FaultPlan;

/// Seconds of delivery delay for a message of `bytes` from `from` to `to`.
/// Return 0 for immediate delivery.
using LatencyModel =
    std::function<common::Seconds(Rank from, Rank to, std::size_t bytes)>;

/// Tag-addressed mailbox. Thread-safe; one instance per endpoint.
class Mailbox {
 public:
  /// Enqueues a message; returns false if the mailbox is closed.
  bool Put(Message msg);

  /// Blocks until a message with the tag arrives (or close). Messages with
  /// other tags are unaffected.
  std::optional<Message> Get(int tag);

  /// Timed variant; std::nullopt on timeout or close-and-drained. A zero
  /// (or negative) timeout degenerates to TryGet: one pop attempt, no wait.
  std::optional<Message> GetFor(int tag, common::Seconds timeout);

  /// Blocks until a message with *any* of the tags arrives; lower tag index
  /// in `tags` wins when several are ready.
  std::optional<Message> GetAny(std::span<const int> tags);

  /// Timed multi-tag receive: waits until a message matching any tag
  /// arrives, the deadline passes (std::nullopt), or the mailbox closes.
  /// This is what lets the controller wait on "probe reply OR goodbye" with
  /// a deadline instead of blocking forever on a dead worker.
  std::optional<Message> GetAnyFor(std::span<const int> tags,
                                   common::Seconds timeout);

  std::optional<Message> TryGet(int tag);

  /// Number of queued messages for a tag.
  std::size_t Pending(int tag) const;

  /// True once Close() has been called. Lets a timed-receive retry loop
  /// tell "timed out, keep waiting" apart from "fabric is gone, give up".
  bool IsClosed() const;

  /// Discards every queued message whose tag lies in [tag_lo, tag_hi];
  /// returns the number removed. Used to sweep stale chunks of an aborted
  /// collective round so they can never alias a later round's traffic.
  std::size_t PurgeTagRange(int tag_lo, int tag_hi);

  void Close();

 private:
  std::optional<Message> PopLocked(std::span<const int> tags)
      RNA_REQUIRES(mu_);

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::deque<Message> messages_ RNA_GUARDED_BY(mu_);
  bool closed_ RNA_GUARDED_BY(mu_) = false;
};

/// Cumulative per-endpoint traffic counters.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// Cumulative per-wire-format traffic: how many chunk payloads a policy
/// produced, the bytes they represent uncompressed (`raw_bytes`), and the
/// bytes that actually crossed the fabric (`wire_bytes`). raw == wire for
/// wire::Format::kRaw; the gap is the compression saving.
struct WireTraffic {
  std::uint64_t chunks = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t wire_bytes = 0;
};

class Fabric {
 public:
  explicit Fabric(std::size_t endpoints, LatencyModel latency = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  std::size_t Size() const { return mailboxes_.size(); }

  /// Installs a fault plan consulted on every subsequent Send (see
  /// fault.hpp). Must be called before any protocol thread sends — the
  /// pointer is read without a lock on the hot path, so installation must
  /// happen-before thread creation. Starts the delivery timer thread if the
  /// plan may inject delays and no latency model already did.
  void InstallFaultPlan(std::shared_ptr<FaultPlan> plan);

  const FaultPlan* InstalledFaultPlan() const { return fault_plan_.get(); }

  /// Delivers (possibly after a modelled delay) to `to`'s mailbox.
  void Send(Rank from, Rank to, Message msg);

  // Receive helpers delegating to the endpoint's mailbox.
  std::optional<Message> Recv(Rank at, int tag);
  std::optional<Message> RecvFor(Rank at, int tag, common::Seconds timeout);
  std::optional<Message> RecvAny(Rank at, std::span<const int> tags);
  std::optional<Message> RecvAnyFor(Rank at, std::span<const int> tags,
                                    common::Seconds timeout);
  std::optional<Message> TryRecv(Rank at, int tag);

  /// Drops queued messages tagged in [tag_lo, tag_hi] at `at`'s mailbox.
  std::size_t Purge(Rank at, int tag_lo, int tag_hi);

  /// True once `at`'s mailbox has been closed (Shutdown()).
  bool IsClosed(Rank at) const;

  /// Closes every mailbox; all blocked receivers wake with std::nullopt.
  void Shutdown();

  /// The fabric-wide payload freelist. Senders Acquire() hop/push buffers
  /// from it and receivers Recycle() consumed payloads back, making the
  /// collective steady state allocation-free (see buffer_pool.hpp for the
  /// ownership rules). Thread-safe.
  BufferPool& Pool() { return pool_; }

  TrafficStats StatsFor(Rank rank) const;
  TrafficStats TotalStats() const;

  /// Attributes one encoded chunk to a wire format: `raw_bytes` is the
  /// chunk's uncompressed size, `wire_bytes` what was actually sent.
  /// Lock-free; called by the collectives on every chunk send.
  void CountWire(wire::Format format, std::size_t raw_bytes,
                 std::size_t wire_bytes);

  WireTraffic WireStatsFor(wire::Format format) const;

  /// Flushes per-format wire counters into the obs metrics registry as
  /// `fabric.wire.<format>.{chunks,raw_bytes,wire_bytes}`. Idempotent
  /// deltas, same contract as BufferPool::PublishMetrics(); called from
  /// Shutdown().
  void PublishWireMetrics();

 private:
  struct PendingDelivery {
    common::SteadyClock::time_point due;
    common::SteadyClock::time_point enqueued;  ///< for latency attribution
    Rank to;
    Message msg;
    bool operator>(const PendingDelivery& other) const { return due > other.due; }
  };

  void TimerLoop();
  void EnsureTimerThread();
  void EnqueueDelayed(Rank to, Message msg, common::Seconds delay);

  // Immutable after construction; safe to index without a lock.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  BufferPool pool_;
  LatencyModel latency_;
  // Written once by InstallFaultPlan before protocol threads exist; read
  // lock-free by Send afterwards.
  std::shared_ptr<FaultPlan> fault_plan_;

  // Per-endpoint traffic counters, one cache-padded slot per sender.
  // Relaxed atomics keep Send lock-free: a thousand concurrent senders
  // must never serialize on a shared stats mutex (the contention showed
  // up as per-worker controller cost growing with the world size).
  struct alignas(64) TrafficCounters {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
  };
  std::vector<TrafficCounters> stats_;

  // Per-wire-format counters (index = wire::Format). Hot-path atomics with
  // shadow `published_` values so PublishWireMetrics() flushes idempotent
  // deltas, mirroring BufferPool.
  struct WireCounters {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> raw_bytes{0};
    std::atomic<std::uint64_t> wire_bytes{0};
    std::atomic<std::uint64_t> published_chunks{0};
    std::atomic<std::uint64_t> published_raw{0};
    std::atomic<std::uint64_t> published_wire{0};
  };
  WireCounters wire_counters_[wire::kFormatCount];

  // Delayed-delivery machinery (only active when a latency model is set).
  common::Mutex timer_mu_;
  common::CondVar timer_cv_;
  std::vector<PendingDelivery> timer_heap_ RNA_GUARDED_BY(timer_mu_);
  bool timer_stop_ RNA_GUARDED_BY(timer_mu_) = false;
  std::thread timer_thread_;
};

}  // namespace rna::net
