#pragma once

// Wire formats for collective payloads: how a chunk of floats is framed
// into a Message::data payload. kRaw is the historical format — the payload
// IS the chunk, bit for bit, with no header — and stays byte-identical to
// the pre-compression fabric. The quantized formats (kFp16, kInt8) and the
// kTopK sparsifier prepend a small self-describing header (format id,
// element count, per-chunk scale) inside the float payload itself, so a
// compressed message is still one pooled float buffer: no Message::meta
// growth, no extra allocation on the hot path.
//
// Frame layout (32-bit words inside Message::data):
//   kRaw : [ v0 v1 ... v(n-1) ]                    — no header
//   kFp16: [ hdr n scale | half-pairs... | tail ]  — 2 values per word
//   kInt8: [ hdr n scale | int8-quads... | tail ]  — 4 values per word
//   kTopK: [ hdr n k     | indices... values... | tail ]
// `hdr` carries a magic byte and the format id (bit-cast u32); `n` and `k`
// are bit-cast u32 counts; `scale` is a plain float. `tail` is the last
// `exact_tail` elements of the chunk carried verbatim (bit-exact) — the
// transport for exact side-channels like the partial-allreduce contributor
// count or Horovod's stop vote, which must survive lossy compression.
//
// Quantization is per chunk: scale = max|v| mapped onto the format's full
// range (65504 for fp16, 127 for int8), so every chunk uses its dynamic
// range fully. Encode can fold an error-feedback residual in (v = src +
// residual) and writes the new residual (v − decoded) back — the memory
// that makes top-k sparsification converge.
//
// Everything here is deterministic: same input bytes → same output bytes,
// on every rank, in every run. Collective agreement (all ranks ending
// bitwise identical) additionally relies on the caller forwarding encoded
// payloads verbatim during the all-gather instead of re-encoding.

#include <cstdint>
#include <span>
#include <vector>

#include "rna/net/buffer_pool.hpp"

namespace rna::net::wire {

enum class Format : std::uint8_t {
  kRaw = 0,
  kFp16 = 1,
  kInt8 = 2,
  kTopK = 3,
};

inline constexpr std::size_t kFormatCount = 4;

const char* FormatName(Format f);

/// How the decoded values are applied to the destination chunk.
enum class Fold {
  kAssign,  ///< dst = decoded (all-gather / broadcast-down)
  kAdd,     ///< dst += decoded (reduce fold); kRaw uses simd::AddInto so the
            ///< uncompressed path stays bitwise identical to the old ring
};

/// Payload words for a chunk of `n` elements (`k` kept values for kTopK,
/// ignored otherwise; `exact_tail` trailing elements carried verbatim).
std::size_t EncodedWords(Format f, std::size_t n, std::size_t k,
                         std::size_t exact_tail);

/// Number of kept values for kTopK over `n` quantized elements: at least
/// one (when n > 0), at most n, ceil(fraction · n) in between.
std::size_t TopKCount(std::size_t n, double fraction);

/// Encodes values v[i] = src[i] + residual[i] into a pool-acquired payload
/// (`residual` may be empty → v = src). When `residual` is non-empty it is
/// overwritten with the error feedback v − decode(encode(v)); the exact
/// tail always leaves a zero residual. `k` is the kTopK keep count
/// (TopKCount), ignored by the other formats. kRaw ignores the residual and
/// produces the chunk verbatim.
std::vector<float> Encode(BufferPool& pool, Format f,
                          std::span<const float> src,
                          std::span<float> residual, std::size_t k,
                          std::size_t exact_tail);

/// Decodes a payload produced by Encode into `dst` (whose size must equal
/// the encoded element count; checked against the frame header). kAssign
/// overwrites — for kTopK the unselected elements become zero; kAdd folds
/// the decoded values in (sparse add for kTopK).
void Decode(Format f, std::span<const float> payload, std::span<float> dst,
            Fold fold, std::size_t exact_tail);

}  // namespace rna::net::wire
