#pragma once

// The wire format of the in-process fabric. A message carries a small
// integer metadata vector (iteration ids, contributor counts, group ids —
// whatever the protocol needs) plus a bulk float payload (gradient or
// parameter chunks). `tag` scopes the message to a logical channel, the
// in-process analogue of an MPI tag.

#include <cstdint>
#include <vector>

namespace rna::net {

using Rank = std::size_t;

struct Message {
  Rank src = 0;
  int tag = 0;
  std::vector<std::int64_t> meta;
  std::vector<float> data;

  std::size_t ByteSize() const {
    return meta.size() * sizeof(std::int64_t) + data.size() * sizeof(float);
  }
};

}  // namespace rna::net
