#pragma once

// A bounded freelist of reusable float payload buffers for the fabric data
// plane. Every ring hop, broadcast fan-out, and PS push used to allocate a
// fresh Message::data vector (at gradient sizes that is an mmap/munmap pair
// per hop); the pool lets senders acquire recycled storage and receivers
// return a consumed payload's storage, so the steady state of a collective
// moves buffers instead of allocating them.
//
// Ownership rules (see DESIGN.md "Data plane & memory"):
//   - Acquire(n) transfers ownership out of the pool: the caller fills the
//     buffer and typically moves it into Message::data for Send.
//   - Recycle(std::move(v)) transfers ownership back once the payload is
//     consumed (after the receiver folded/copied it out). Recycling a
//     buffer that is still referenced anywhere is a use-after-recycle bug.
//   - The pool never blocks: an empty freelist falls back to allocation
//     (counted as a miss), and a full freelist frees the recycled buffer.
//
// Counters are lock-free atomics (the pool sits on the per-hop hot path);
// PublishMetrics() flushes the deltas into the obs metrics registry as
// `fabric.pool.*`, which is how benches and tests verify the steady state
// is allocation-free instead of asserting it.

#include <atomic>
#include <cstdint>
#include <vector>

#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"

namespace rna::net {

class BufferPool {
 public:
  /// `max_buffers` bounds the freelist; recycles beyond it are freed.
  explicit BufferPool(std::size_t max_buffers = kDefaultMaxBuffers);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of exactly `n` elements with unspecified contents. Reuses
  /// pooled storage when available (a hit iff no reallocation was needed).
  std::vector<float> Acquire(std::size_t n);

  /// Returns a spent payload's storage to the pool.
  void Recycle(std::vector<float>&& buffer);

  struct Stats {
    std::uint64_t hits = 0;          ///< acquires served without allocation
    std::uint64_t misses = 0;        ///< acquires that had to allocate
    std::uint64_t recycled = 0;      ///< buffers returned to the freelist
    std::uint64_t discarded = 0;     ///< recycles dropped (freelist full)
    std::uint64_t bytes_reused = 0;  ///< payload bytes served from the pool
    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  Stats GetStats() const;

  /// Flushes counter deltas since the last publish into the active metrics
  /// registry (`fabric.pool.hits` / `.misses` / `.recycled` /
  /// `.bytes_reused`). Safe to call repeatedly; deltas are published once.
  void PublishMetrics();

  static constexpr std::size_t kDefaultMaxBuffers = 64;

 private:
  const std::size_t max_buffers_;

  mutable common::Mutex mu_;
  std::vector<std::vector<float>> free_ RNA_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> discarded_{0};
  std::atomic<std::uint64_t> bytes_reused_{0};
  std::atomic<std::uint64_t> published_hits_{0};
  std::atomic<std::uint64_t> published_misses_{0};
  std::atomic<std::uint64_t> published_recycled_{0};
  std::atomic<std::uint64_t> published_bytes_{0};
};

}  // namespace rna::net
