#pragma once

// Deterministic fault injection for the in-process fabric.
//
// A FaultPlan is a small rule table the Fabric consults on every Send. Each
// rule matches a slice of traffic (sender, receiver, tag range, and a
// per-stream sequence window) and assigns probabilities for the three
// injectable faults: drop the message, duplicate it, or delay it (reordering
// emerges from delays, since the fabric's timer thread releases messages in
// due-time order while undelayed traffic bypasses it).
//
// Determinism contract — the property the chaos suite is built on: the
// decision for a message is a pure function of
//     (plan seed, from, to, tag, per-(from,to,tag) sequence number)
// hashed through SplitMix64, NOT a shared RNG stream. Every (from, to, tag)
// stream in this codebase has a single sending thread, so the sequence
// numbers — and therefore every fault decision — are identical across runs
// regardless of how the OS interleaves threads. Replaying a chaos seed
// replays the exact same drops.
//
// Scripted faults use a degenerate window: e.g. {seq_begin = 3, seq_end = 4,
// drop_prob = 1.0} drops exactly the 4th message of a stream.

#include <cstdint>
#include <limits>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"
#include "rna/net/message.hpp"

namespace rna::net {

/// What the fabric should do with one message. Drop wins over everything;
/// duplicate and delay compose (both copies share the extra delay).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  common::Seconds extra_delay = 0.0;
};

/// One traffic-matching rule. Negative `from`/`to` match any rank; the tag
/// interval is inclusive; the sequence window is half-open [seq_begin,
/// seq_end) over the matched stream's per-(from,to,tag) message count.
struct FaultRule {
  std::int64_t from = -1;  ///< sender rank, or -1 for any
  std::int64_t to = -1;    ///< receiver rank, or -1 for any
  int tag_lo = std::numeric_limits<int>::min();
  int tag_hi = std::numeric_limits<int>::max();
  std::uint64_t seq_begin = 0;
  std::uint64_t seq_end = std::numeric_limits<std::uint64_t>::max();
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  common::Seconds delay_s = 0.0;  ///< extra delay when the delay fault fires

  bool Matches(Rank f, Rank t, int tag, std::uint64_t seq) const {
    if (from >= 0 && static_cast<Rank>(from) != f) return false;
    if (to >= 0 && static_cast<Rank>(to) != t) return false;
    if (tag < tag_lo || tag > tag_hi) return false;
    return seq >= seq_begin && seq < seq_end;
  }
};

/// Cumulative injection counters (also mirrored into MetricsRegistry by the
/// fabric under `fault.net.*`); handy for oracle assertions in tests.
struct FaultCounters {
  std::uint64_t examined = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
};

/// Seeded, thread-safe fault rule table. Install on a Fabric via
/// Fabric::InstallFaultPlan before protocol threads start sending; the first
/// rule that matches a message decides its fate.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Appends a rule. Not thread-safe against concurrent Decide; add all
  /// rules before the fabric goes live.
  void AddRule(const FaultRule& rule) { rules_.push_back(rule); }

  std::uint64_t SeedValue() const { return seed_; }
  bool Empty() const { return rules_.empty(); }

  /// Decides the fate of one message. Thread-safe; advances the matched
  /// stream's sequence number exactly once per call.
  FaultDecision Decide(Rank from, Rank to, int tag);

  FaultCounters Totals() const;

 private:
  /// Deterministic uniform in [0, 1) from the decision coordinates plus a
  /// per-fault-kind salt (so drop/dup/delay draws are independent).
  double HashUniform(Rank from, Rank to, int tag, std::uint64_t seq,
                     std::uint64_t salt) const;

  const std::uint64_t seed_;
  std::vector<FaultRule> rules_;  ///< immutable once the fabric is live

  mutable common::Mutex mu_;
  /// Per-stream sequence numbers, keyed by (from, to, tag) packed into one
  /// 64-bit word (ranks are tiny here; tags fit in 32 bits).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seqs_
      RNA_GUARDED_BY(mu_);
  FaultCounters counters_ RNA_GUARDED_BY(mu_);
};

}  // namespace rna::net
