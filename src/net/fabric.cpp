#include "rna/net/fabric.hpp"

#include <algorithm>

#include "rna/common/check.hpp"

namespace rna::net {

namespace {

bool TagMatches(int tag, std::span<const int> tags) {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

}  // namespace

bool Mailbox::Put(Message msg) {
  {
    std::scoped_lock lock(mu_);
    if (closed_) return false;
    messages_.push_back(std::move(msg));
  }
  cv_.notify_all();
  return true;
}

std::optional<Message> Mailbox::PopLocked(std::span<const int> tags) {
  for (auto it = messages_.begin(); it != messages_.end(); ++it) {
    if (TagMatches(it->tag, tags)) {
      Message msg = std::move(*it);
      messages_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::Get(int tag) {
  const int tags[] = {tag};
  return GetAny(tags);
}

std::optional<Message> Mailbox::GetFor(int tag, common::Seconds timeout) {
  const int tags[] = {tag};
  std::unique_lock lock(mu_);
  std::optional<Message> found;
  cv_.wait_for(lock, common::FromSeconds(timeout), [&] {
    found = PopLocked(tags);
    return found.has_value() || closed_;
  });
  if (!found) found = PopLocked(tags);  // final chance after timeout/close
  return found;
}

std::optional<Message> Mailbox::GetAny(std::span<const int> tags) {
  std::unique_lock lock(mu_);
  std::optional<Message> found;
  cv_.wait(lock, [&] {
    found = PopLocked(tags);
    return found.has_value() || closed_;
  });
  return found;
}

std::optional<Message> Mailbox::TryGet(int tag) {
  const int tags[] = {tag};
  std::scoped_lock lock(mu_);
  return PopLocked(tags);
}

std::size_t Mailbox::Pending(int tag) const {
  std::scoped_lock lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(messages_.begin(), messages_.end(),
                    [&](const Message& m) { return m.tag == tag; }));
}

void Mailbox::Close() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

Fabric::Fabric(std::size_t endpoints, LatencyModel latency)
    : latency_(std::move(latency)), stats_(endpoints) {
  RNA_CHECK_MSG(endpoints > 0, "fabric needs at least one endpoint");
  mailboxes_.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  if (latency_) {
    timer_thread_ = std::thread([this] { TimerLoop(); });
  }
}

Fabric::~Fabric() {
  Shutdown();
  if (timer_thread_.joinable()) {
    {
      std::scoped_lock lock(timer_mu_);
      timer_stop_ = true;
    }
    timer_cv_.notify_all();
    timer_thread_.join();
  }
}

void Fabric::Send(Rank from, Rank to, Message msg) {
  RNA_CHECK(from < Size() && to < Size());
  msg.src = from;
  {
    std::scoped_lock lock(stats_mu_);
    ++stats_[from].messages_sent;
    stats_[from].bytes_sent += msg.ByteSize();
  }
  common::Seconds delay = 0.0;
  if (latency_) delay = latency_(from, to, msg.ByteSize());
  if (delay <= 0.0) {
    mailboxes_[to]->Put(std::move(msg));
    return;
  }
  {
    std::scoped_lock lock(timer_mu_);
    timer_heap_.push_back(PendingDelivery{
        common::SteadyClock::now() + common::FromSeconds(delay), to,
        std::move(msg)});
    std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                   std::greater<PendingDelivery>{});
  }
  timer_cv_.notify_all();
}

void Fabric::TimerLoop() {
  std::unique_lock lock(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock, [&] { return timer_stop_ || !timer_heap_.empty(); });
      continue;
    }
    const auto due = timer_heap_.front().due;
    const auto now = common::SteadyClock::now();
    if (now < due) {
      timer_cv_.wait_until(lock, due);
      continue;
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(),
                  std::greater<PendingDelivery>{});
    PendingDelivery delivery = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    lock.unlock();
    mailboxes_[delivery.to]->Put(std::move(delivery.msg));
    lock.lock();
  }
}

std::optional<Message> Fabric::Recv(Rank at, int tag) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->Get(tag);
}

std::optional<Message> Fabric::RecvFor(Rank at, int tag,
                                       common::Seconds timeout) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->GetFor(tag, timeout);
}

std::optional<Message> Fabric::RecvAny(Rank at, std::span<const int> tags) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->GetAny(tags);
}

std::optional<Message> Fabric::TryRecv(Rank at, int tag) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->TryGet(tag);
}

void Fabric::Shutdown() {
  for (auto& mailbox : mailboxes_) mailbox->Close();
}

TrafficStats Fabric::StatsFor(Rank rank) const {
  RNA_CHECK(rank < Size());
  std::scoped_lock lock(stats_mu_);
  return stats_[rank];
}

TrafficStats Fabric::TotalStats() const {
  std::scoped_lock lock(stats_mu_);
  TrafficStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
  }
  return total;
}

}  // namespace rna::net
