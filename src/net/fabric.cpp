#include "rna/net/fabric.hpp"

#include <algorithm>

#include "rna/common/check.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"

namespace rna::net {

namespace {

bool TagMatches(int tag, std::span<const int> tags) {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

}  // namespace

bool Mailbox::Put(Message msg) {
  {
    common::MutexLock lock(mu_);
    if (closed_) return false;
    messages_.push_back(std::move(msg));
  }
  cv_.NotifyAll();
  return true;
}

std::optional<Message> Mailbox::PopLocked(std::span<const int> tags) {
  for (auto it = messages_.begin(); it != messages_.end(); ++it) {
    if (TagMatches(it->tag, tags)) {
      Message msg = std::move(*it);
      messages_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::Get(int tag) {
  const int tags[] = {tag};
  return GetAny(tags);
}

std::optional<Message> Mailbox::GetFor(int tag, common::Seconds timeout) {
  const int tags[] = {tag};
  return GetAnyFor(tags, timeout);
}

std::optional<Message> Mailbox::GetAnyFor(std::span<const int> tags,
                                          common::Seconds timeout) {
  if (timeout <= 0.0) {  // degenerate to a non-blocking poll
    common::MutexLock lock(mu_);
    return PopLocked(tags);
  }
  const auto deadline =
      common::SteadyClock::now() + common::FromSeconds(timeout);
  common::MutexLock lock(mu_);
  for (;;) {
    if (auto found = PopLocked(tags)) return found;
    if (closed_) return std::nullopt;
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      return PopLocked(tags);  // final chance after the timeout
    }
  }
}

std::size_t Mailbox::PurgeTagRange(int tag_lo, int tag_hi) {
  common::MutexLock lock(mu_);
  const std::size_t before = messages_.size();
  std::erase_if(messages_, [&](const Message& m) {
    return m.tag >= tag_lo && m.tag <= tag_hi;
  });
  return before - messages_.size();
}

std::optional<Message> Mailbox::GetAny(std::span<const int> tags) {
  common::MutexLock lock(mu_);
  for (;;) {
    if (auto found = PopLocked(tags)) return found;
    if (closed_) return std::nullopt;
    cv_.Wait(mu_);
  }
}

std::optional<Message> Mailbox::TryGet(int tag) {
  const int tags[] = {tag};
  common::MutexLock lock(mu_);
  return PopLocked(tags);
}

bool Mailbox::IsClosed() const {
  common::MutexLock lock(mu_);
  return closed_;
}

std::size_t Mailbox::Pending(int tag) const {
  common::MutexLock lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(messages_.begin(), messages_.end(),
                    [&](const Message& m) { return m.tag == tag; }));
}

void Mailbox::Close() {
  {
    common::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

Fabric::Fabric(std::size_t endpoints, LatencyModel latency)
    : latency_(std::move(latency)), stats_(endpoints) {
  RNA_CHECK_MSG(endpoints > 0, "fabric needs at least one endpoint");
  mailboxes_.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  if (latency_) EnsureTimerThread();
}

void Fabric::EnsureTimerThread() {
  if (!timer_thread_.joinable()) {
    timer_thread_ = std::thread([this] { TimerLoop(); });
  }
}

void Fabric::InstallFaultPlan(std::shared_ptr<FaultPlan> plan) {
  fault_plan_ = std::move(plan);
  // Delay faults need the delivery timer even without a latency model.
  if (fault_plan_) EnsureTimerThread();
}

Fabric::~Fabric() {
  Shutdown();
  if (timer_thread_.joinable()) {
    {
      common::MutexLock lock(timer_mu_);
      timer_stop_ = true;
    }
    timer_cv_.NotifyAll();
    timer_thread_.join();
  }
}

void Fabric::Send(Rank from, Rank to, Message msg) {
  RNA_CHECK(from < Size() && to < Size());
  msg.src = from;
  const std::size_t bytes = msg.ByteSize();
  stats_[from].messages_sent.fetch_add(1, std::memory_order_relaxed);
  stats_[from].bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  obs::CountMetric("fabric.messages");
  obs::CountMetric("fabric.bytes", static_cast<std::int64_t>(bytes));
  FaultDecision fault;
  if (fault_plan_) fault = fault_plan_->Decide(from, to, msg.tag);
  if (fault.drop) {
    // The sender already paid for the bytes (stats above); the message
    // simply never arrives — exactly a lossy link. Its payload storage is
    // still perfectly good: recycle it so a drop storm does not degrade
    // the pool's steady state.
    obs::CountMetric("fault.net.dropped");
    pool_.Recycle(std::move(msg.data));
    return;
  }
  if (fault.duplicate) obs::CountMetric("fault.net.duplicated");
  if (fault.extra_delay > 0.0) {
    obs::CountMetric("fault.net.delayed");
    obs::ObserveMetric("fault.net.extra_delay_s", fault.extra_delay);
  }
  common::Seconds delay = fault.extra_delay;
  if (latency_) delay += latency_(from, to, bytes);
  if (delay <= 0.0) {
    if (fault.duplicate) mailboxes_[to]->Put(msg);
    mailboxes_[to]->Put(std::move(msg));
    return;
  }
  obs::CountMetric("fabric.delayed_messages");
  obs::ObserveMetric("fabric.injected_delay_s", delay);
  if (fault.duplicate) EnqueueDelayed(to, msg, delay);
  EnqueueDelayed(to, std::move(msg), delay);
}

void Fabric::EnqueueDelayed(Rank to, Message msg, common::Seconds delay) {
  const auto now = common::SteadyClock::now();
  {
    common::MutexLock lock(timer_mu_);
    timer_heap_.push_back(PendingDelivery{now + common::FromSeconds(delay),
                                          now, to, std::move(msg)});
    std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                   std::greater<PendingDelivery>{});
  }
  timer_cv_.NotifyAll();
}

void Fabric::TimerLoop() {
  // One span per delayed delivery, covering enqueue → handoff, so injected
  // network latency shows up as its own lane in the trace. The handle is
  // owned by this (single) timer thread.
  const obs::TrackHandle track = obs::RegisterTrack("fabric");
  common::MutexLock lock(timer_mu_);
  for (;;) {
    if (timer_stop_) return;
    if (timer_heap_.empty()) {
      timer_cv_.Wait(timer_mu_);
      continue;
    }
    const auto due = timer_heap_.front().due;
    if (common::SteadyClock::now() < due) {
      timer_cv_.WaitUntil(timer_mu_, due);
      continue;
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(),
                  std::greater<PendingDelivery>{});
    PendingDelivery delivery = std::move(timer_heap_.back());
    timer_heap_.pop_back();
    // Deliver outside the lock: Put takes the mailbox lock and may wake a
    // receiver that immediately calls Send back into this fabric.
    lock.Unlock();
    if (obs::TraceRecorder* rec = track.Recorder();
        track.Enabled() && rec == obs::ActiveTrace()) {
      obs::Span span;
      span.name = "in_flight";
      span.category = obs::Category::kComm;
      span.start = rec->SinceEpoch(delivery.enqueued);
      span.duration =
          common::ToSeconds(common::SteadyClock::now() - delivery.enqueued);
      span.arg_keys[0] = "to";
      span.arg_vals[0] = static_cast<double>(delivery.to);
      rec->Record(track, span);
    }
    mailboxes_[delivery.to]->Put(std::move(delivery.msg));
    lock.Lock();
  }
}

std::optional<Message> Fabric::Recv(Rank at, int tag) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->Get(tag);
}

std::optional<Message> Fabric::RecvFor(Rank at, int tag,
                                       common::Seconds timeout) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->GetFor(tag, timeout);
}

std::optional<Message> Fabric::RecvAny(Rank at, std::span<const int> tags) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->GetAny(tags);
}

std::optional<Message> Fabric::RecvAnyFor(Rank at, std::span<const int> tags,
                                          common::Seconds timeout) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->GetAnyFor(tags, timeout);
}

std::size_t Fabric::Purge(Rank at, int tag_lo, int tag_hi) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->PurgeTagRange(tag_lo, tag_hi);
}

bool Fabric::IsClosed(Rank at) const {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->IsClosed();
}

std::optional<Message> Fabric::TryRecv(Rank at, int tag) {
  RNA_CHECK(at < Size());
  return mailboxes_[at]->TryGet(tag);
}

void Fabric::Shutdown() {
  for (auto& mailbox : mailboxes_) mailbox->Close();
  // Counter deltas flush idempotently, so the dtor's second Shutdown only
  // publishes whatever accrued since this one.
  pool_.PublishMetrics();
  PublishWireMetrics();
}

void Fabric::CountWire(wire::Format format, std::size_t raw_bytes,
                       std::size_t wire_bytes) {
  auto& c = wire_counters_[static_cast<std::size_t>(format)];
  c.chunks.fetch_add(1, std::memory_order_relaxed);
  c.raw_bytes.fetch_add(raw_bytes, std::memory_order_relaxed);
  c.wire_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
}

WireTraffic Fabric::WireStatsFor(wire::Format format) const {
  const auto& c = wire_counters_[static_cast<std::size_t>(format)];
  WireTraffic t;
  t.chunks = c.chunks.load(std::memory_order_relaxed);
  t.raw_bytes = c.raw_bytes.load(std::memory_order_relaxed);
  t.wire_bytes = c.wire_bytes.load(std::memory_order_relaxed);
  return t;
}

void Fabric::PublishWireMetrics() {
  // Metric names must outlive the registry; build them per format from
  // static storage.
  static const char* const kNames[wire::kFormatCount][3] = {
      {"fabric.wire.raw.chunks", "fabric.wire.raw.raw_bytes",
       "fabric.wire.raw.wire_bytes"},
      {"fabric.wire.fp16.chunks", "fabric.wire.fp16.raw_bytes",
       "fabric.wire.fp16.wire_bytes"},
      {"fabric.wire.int8.chunks", "fabric.wire.int8.raw_bytes",
       "fabric.wire.int8.wire_bytes"},
      {"fabric.wire.topk.chunks", "fabric.wire.topk.raw_bytes",
       "fabric.wire.topk.wire_bytes"},
  };
  auto flush = [](std::atomic<std::uint64_t>& current,
                  std::atomic<std::uint64_t>& published, const char* name) {
    const std::uint64_t now = current.load(std::memory_order_relaxed);
    const std::uint64_t prev =
        published.exchange(now, std::memory_order_relaxed);
    if (now > prev) {
      obs::CountMetric(name, static_cast<std::int64_t>(now - prev));
    }
  };
  for (std::size_t f = 0; f < wire::kFormatCount; ++f) {
    auto& c = wire_counters_[f];
    flush(c.chunks, c.published_chunks, kNames[f][0]);
    flush(c.raw_bytes, c.published_raw, kNames[f][1]);
    flush(c.wire_bytes, c.published_wire, kNames[f][2]);
  }
}

TrafficStats Fabric::StatsFor(Rank rank) const {
  RNA_CHECK(rank < Size());
  TrafficStats out;
  out.messages_sent = stats_[rank].messages_sent.load(std::memory_order_relaxed);
  out.bytes_sent = stats_[rank].bytes_sent.load(std::memory_order_relaxed);
  return out;
}

TrafficStats Fabric::TotalStats() const {
  TrafficStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent.load(std::memory_order_relaxed);
    total.bytes_sent += s.bytes_sent.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace rna::net
