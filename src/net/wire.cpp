#include "rna/net/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"

namespace rna::net::wire {

namespace {

// Frame header: magic "RW" in the top half so a decoder can reject a raw
// chunk that was mistakenly routed through a compressed decode path.
constexpr std::uint32_t kMagic = 0x52570000u;
constexpr std::size_t kHeaderWords = 3;

inline float WordFromU32(std::uint32_t u) { return std::bit_cast<float>(u); }
inline std::uint32_t U32FromWord(float w) {
  return std::bit_cast<std::uint32_t>(w);
}

// Half-precision conversion with round-to-nearest-even. Values arrive
// pre-scaled onto [-65504, 65504], so overflow only happens via rounding at
// the very top of the range; it clamps back to the max finite half.
inline std::uint16_t HalfFromFloat(float x) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  std::uint32_t mant = bits & 0x007fffffu;
  const int exp = static_cast<int>((bits >> 23) & 0xffu) - 127 + 15;
  if (exp >= 31) {
    return static_cast<std::uint16_t>(sign | 0x7bffu);
  }
  if (exp <= 0) {
    if (exp < -10) {
      return static_cast<std::uint16_t>(sign);
    }
    mant |= 0x00800000u;
    const int shift = 14 - exp;
    const std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t h = sign | half_mant;
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) {
      ++h;
    }
    return static_cast<std::uint16_t>(h);
  }
  std::uint32_t h =
      sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) {
    ++h;
  }
  if ((h & 0x7fffu) >= 0x7c00u) {
    h = sign | 0x7bffu;
  }
  return static_cast<std::uint16_t>(h);
}

inline float FloatFromHalf(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      int e = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++e;
      }
      mant &= 0x3ffu;
      bits = sign | (static_cast<std::uint32_t>(113 - e) << 23) | (mant << 13);
    }
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

// v[i] = src[i] + residual[i] (residual optional).
inline float ValueAt(std::span<const float> src, std::span<const float> res,
                     std::size_t i) {
  return res.empty() ? src[i] : src[i] + res[i];
}

}  // namespace

const char* FormatName(Format f) {
  switch (f) {
    case Format::kRaw:
      return "raw";
    case Format::kFp16:
      return "fp16";
    case Format::kInt8:
      return "int8";
    case Format::kTopK:
      return "topk";
  }
  return "unknown";
}

std::size_t EncodedWords(Format f, std::size_t n, std::size_t k,
                         std::size_t exact_tail) {
  RNA_CHECK_MSG(exact_tail <= n, "wire: exact tail larger than chunk");
  const std::size_t nq = n - exact_tail;
  switch (f) {
    case Format::kRaw:
      return n;
    case Format::kFp16:
      return kHeaderWords + (nq + 1) / 2 + exact_tail;
    case Format::kInt8:
      return kHeaderWords + (nq + 3) / 4 + exact_tail;
    case Format::kTopK:
      RNA_CHECK_MSG(k <= nq, "wire: top-k keep count larger than chunk");
      return kHeaderWords + 2 * k + exact_tail;
  }
  return n;
}

std::size_t TopKCount(std::size_t n, double fraction) {
  if (n == 0) {
    return 0;
  }
  const double want = std::ceil(fraction * static_cast<double>(n));
  const auto k = static_cast<std::size_t>(std::max(1.0, want));
  return std::min(k, n);
}

std::vector<float> Encode(BufferPool& pool, Format f,
                          std::span<const float> src,
                          std::span<float> residual, std::size_t k,
                          std::size_t exact_tail) {
  const std::size_t n = src.size();
  RNA_CHECK_MSG(exact_tail <= n, "wire: exact tail larger than chunk");
  RNA_CHECK_MSG(residual.empty() || residual.size() == n,
                "wire: residual size mismatch");
  const std::size_t nq = n - exact_tail;

  if (f == Format::kRaw) {
    std::vector<float> payload = pool.Acquire(n);
    std::copy(src.begin(), src.end(), payload.begin());
    return payload;
  }

  std::vector<float> payload = pool.Acquire(EncodedWords(f, n, k, exact_tail));
  payload[1] = WordFromU32(static_cast<std::uint32_t>(n));

  switch (f) {
    case Format::kFp16: {
      payload[0] = WordFromU32(kMagic | static_cast<std::uint32_t>(f));
      float m = 0.0f;
      for (std::size_t i = 0; i < nq; ++i) {
        const float a = std::fabs(ValueAt(src, residual, i));
        if (a > m) {
          m = a;
        }
      }
      const float scale = m / 65504.0f;
      const float inv = m > 0.0f ? 65504.0f / m : 0.0f;
      payload[2] = scale;
      for (std::size_t i = 0; i < nq; i += 2) {
        const float v0 = ValueAt(src, residual, i);
        const std::uint16_t h0 = HalfFromFloat(v0 * inv);
        std::uint32_t word = h0;
        if (i + 1 < nq) {
          const float v1 = ValueAt(src, residual, i + 1);
          const std::uint16_t h1 = HalfFromFloat(v1 * inv);
          word |= static_cast<std::uint32_t>(h1) << 16;
          if (!residual.empty()) {
            residual[i + 1] = v1 - FloatFromHalf(h1) * scale;
          }
        }
        payload[kHeaderWords + i / 2] = WordFromU32(word);
        if (!residual.empty()) {
          residual[i] = v0 - FloatFromHalf(h0) * scale;
        }
      }
      break;
    }
    case Format::kInt8: {
      payload[0] = WordFromU32(kMagic | static_cast<std::uint32_t>(f));
      float m = 0.0f;
      for (std::size_t i = 0; i < nq; ++i) {
        const float a = std::fabs(ValueAt(src, residual, i));
        if (a > m) {
          m = a;
        }
      }
      const float scale = m / 127.0f;
      const float inv = m > 0.0f ? 127.0f / m : 0.0f;
      payload[2] = scale;
      for (std::size_t i = 0; i < nq; i += 4) {
        std::uint32_t word = 0;
        for (std::size_t j = 0; j < 4 && i + j < nq; ++j) {
          const float v = ValueAt(src, residual, i + j);
          long q = std::lround(static_cast<double>(v) * inv);
          q = std::clamp<long>(q, -127, 127);
          word |= (static_cast<std::uint32_t>(static_cast<std::uint8_t>(
                      static_cast<std::int8_t>(q))))
                  << (8 * j);
          if (!residual.empty()) {
            residual[i + j] = v - static_cast<float>(q) * scale;
          }
        }
        payload[kHeaderWords + i / 4] = WordFromU32(word);
      }
      break;
    }
    case Format::kTopK: {
      payload[0] = WordFromU32(kMagic | static_cast<std::uint32_t>(f));
      RNA_CHECK_MSG(k <= nq && (nq == 0 || k > 0),
                    "wire: top-k keep count out of range");
      payload[2] = WordFromU32(static_cast<std::uint32_t>(k));
      float threshold = 0.0f;
      if (k > 0 && k < nq) {
        std::vector<float> scratch = pool.Acquire(nq);
        for (std::size_t i = 0; i < nq; ++i) {
          scratch[i] = std::fabs(ValueAt(src, residual, i));
        }
        std::nth_element(scratch.begin(),
                         scratch.begin() + static_cast<std::ptrdiff_t>(k - 1),
                         scratch.end(), std::greater<float>());
        threshold = scratch[k - 1];
        pool.Recycle(std::move(scratch));
      }
      // Strictly-greater values are always kept; ties at the threshold are
      // kept lowest-index-first until k slots are filled. Deterministic on
      // every rank because the walk order is the element order.
      std::size_t greater = 0;
      for (std::size_t i = 0; i < nq; ++i) {
        if (std::fabs(ValueAt(src, residual, i)) > threshold) {
          ++greater;
        }
      }
      std::size_t equals_allowed = (k >= nq) ? nq : k - greater;
      std::size_t out = 0;
      for (std::size_t i = 0; i < nq; ++i) {
        const float v = ValueAt(src, residual, i);
        const float a = std::fabs(v);
        bool take = false;
        if (out < k) {
          if (k >= nq || a > threshold) {
            take = true;
          } else if (a == threshold && equals_allowed > 0) {
            take = true;
            --equals_allowed;
          }
        }
        if (take) {
          payload[kHeaderWords + out] =
              WordFromU32(static_cast<std::uint32_t>(i));
          payload[kHeaderWords + k + out] = v;
          if (!residual.empty()) {
            residual[i] = 0.0f;
          }
          ++out;
        } else if (!residual.empty()) {
          residual[i] = v;
        }
      }
      RNA_CHECK_MSG(out == k, "wire: top-k selection under-filled");
      break;
    }
    case Format::kRaw:
      break;
  }

  // The exact tail rides verbatim and leaves no residual behind.
  for (std::size_t i = 0; i < exact_tail; ++i) {
    payload[payload.size() - exact_tail + i] = src[nq + i];
    if (!residual.empty()) {
      residual[nq + i] = 0.0f;
    }
  }
  return payload;
}

void Decode(Format f, std::span<const float> payload, std::span<float> dst,
            Fold fold, std::size_t exact_tail) {
  const std::size_t n = dst.size();
  RNA_CHECK_MSG(exact_tail <= n, "wire: exact tail larger than chunk");
  const std::size_t nq = n - exact_tail;

  if (f == Format::kRaw) {
    RNA_CHECK_MSG(payload.size() == n, "wire: raw payload size mismatch");
    if (fold == Fold::kAdd) {
      common::simd::AddInto(dst, payload);
    } else {
      std::copy(payload.begin(), payload.end(), dst.begin());
    }
    return;
  }

  RNA_CHECK_MSG(payload.size() >= kHeaderWords, "wire: truncated frame");
  const std::uint32_t hdr = U32FromWord(payload[0]);
  RNA_CHECK_MSG((hdr & 0xffff0000u) == kMagic, "wire: bad frame magic");
  RNA_CHECK_MSG(static_cast<Format>(hdr & 0xffu) == f,
                "wire: frame format mismatch");
  RNA_CHECK_MSG(U32FromWord(payload[1]) == static_cast<std::uint32_t>(n),
                "wire: frame element count mismatch");

  switch (f) {
    case Format::kFp16: {
      RNA_CHECK_MSG(
          payload.size() == EncodedWords(f, n, 0, exact_tail),
          "wire: fp16 payload size mismatch");
      const float scale = payload[2];
      for (std::size_t i = 0; i < nq; i += 2) {
        const std::uint32_t word = U32FromWord(payload[kHeaderWords + i / 2]);
        const float v0 =
            FloatFromHalf(static_cast<std::uint16_t>(word & 0xffffu)) * scale;
        if (fold == Fold::kAdd) {
          dst[i] += v0;
        } else {
          dst[i] = v0;
        }
        if (i + 1 < nq) {
          const float v1 =
              FloatFromHalf(static_cast<std::uint16_t>(word >> 16)) * scale;
          if (fold == Fold::kAdd) {
            dst[i + 1] += v1;
          } else {
            dst[i + 1] = v1;
          }
        }
      }
      break;
    }
    case Format::kInt8: {
      RNA_CHECK_MSG(
          payload.size() == EncodedWords(f, n, 0, exact_tail),
          "wire: int8 payload size mismatch");
      const float scale = payload[2];
      for (std::size_t i = 0; i < nq; i += 4) {
        const std::uint32_t word = U32FromWord(payload[kHeaderWords + i / 4]);
        for (std::size_t j = 0; j < 4 && i + j < nq; ++j) {
          const auto q = static_cast<std::int8_t>(
              static_cast<std::uint8_t>((word >> (8 * j)) & 0xffu));
          const float v = static_cast<float>(q) * scale;
          if (fold == Fold::kAdd) {
            dst[i + j] += v;
          } else {
            dst[i + j] = v;
          }
        }
      }
      break;
    }
    case Format::kTopK: {
      const std::size_t k = U32FromWord(payload[2]);
      RNA_CHECK_MSG(k <= nq, "wire: top-k keep count larger than chunk");
      RNA_CHECK_MSG(
          payload.size() == EncodedWords(f, n, k, exact_tail),
          "wire: top-k payload size mismatch");
      if (fold == Fold::kAssign) {
        std::fill(dst.begin(), dst.begin() + static_cast<std::ptrdiff_t>(nq),
                  0.0f);
      }
      for (std::size_t s = 0; s < k; ++s) {
        const std::size_t idx = U32FromWord(payload[kHeaderWords + s]);
        RNA_CHECK_MSG(idx < nq, "wire: top-k index out of range");
        const float v = payload[kHeaderWords + k + s];
        if (fold == Fold::kAdd) {
          dst[idx] += v;
        } else {
          dst[idx] = v;
        }
      }
      break;
    }
    case Format::kRaw:
      break;
  }

  for (std::size_t i = 0; i < exact_tail; ++i) {
    const float v = payload[payload.size() - exact_tail + i];
    if (fold == Fold::kAdd) {
      dst[nq + i] += v;
    } else {
      dst[nq + i] = v;
    }
  }
}

}  // namespace rna::net::wire
